package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/value"
)

// TestIncrementalAnswersMatchScratch pins the whole delta-driven stack at
// the CQA level: consistent answers, possible answers, and repair listings
// computed with the incremental probes and base-anchored patched evaluation
// must be byte-identical to the scratch search probe combined with full
// per-repair query evaluation, at workers ∈ {1, 4}. This is the acceptance
// differential for the tentpole.
func TestIncrementalAnswersMatchScratch(t *testing.T) {
	sets := []*constraint.Set{
		parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`),
		parser.MustConstraints(`
			r(X, Y), r(X, Z) -> Y = Z.
			s(U, V) -> r(V, W).
		`),
		parser.MustConstraints(`
			r(X, Y), isnull(X) -> false.
			s(U, V) -> r(V, W).
		`),
	}
	queries := [][]string{
		{`q(Id) :- student(Id, Name).`, `q :- course(21, c15).`, `q(Id) :- course(Id, Code), not student(Id, Code).`},
		{`q(X, Y) :- r(X, Y).`, `q(U) :- s(U, V), r(V, W).`, `q :- r(a, b).`},
		{`q(V) :- s(U, V), not r(V, V).`, `q(X) :- r(X, Y).`},
	}
	rng := rand.New(rand.NewSource(73))
	vals := []value.V{value.Str("a"), value.Str("b"), value.Null(), value.Int(21)}
	pick := func() value.V { return vals[rng.Intn(len(vals))] }

	for round := 0; round < 12; round++ {
		for si, set := range sets {
			d := relational.NewInstance()
			if si == 0 {
				d.Insert(relational.F("course", value.Int(21), value.Str("c15")))
				for k := 0; k < rng.Intn(3); k++ {
					d.Insert(relational.F("course", pick(), pick()))
				}
				for k := 0; k < rng.Intn(3); k++ {
					d.Insert(relational.F("student", pick(), pick()))
				}
			} else {
				for k := 0; k < 1+rng.Intn(3); k++ {
					d.Insert(relational.F("r", pick(), pick()))
				}
				for k := 0; k < rng.Intn(3); k++ {
					d.Insert(relational.F("s", pick(), pick()))
				}
			}

			// Repair listings: incremental vs scratch, both worker counts.
			scratchOpts := NewOptions()
			scratchOpts.Repair.ScratchProbe = true
			scratch, err := RepairsOf(d, set, scratchOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				opts := NewOptions()
				opts.Repair.Workers = workers
				inc, err := RepairsOf(d, set, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(inc) != len(scratch) {
					t.Fatalf("round %d set %d workers %d: %d repairs incremental, %d scratch\nD=%v",
						round, si, workers, len(inc), len(scratch), d)
				}
				for i := range scratch {
					if inc[i].Key() != scratch[i].Key() {
						t.Fatalf("round %d set %d workers %d: repair %d differs\nD=%v", round, si, workers, i, d)
					}
				}
			}

			for _, qsrc := range queries[si] {
				q := parser.MustQuery(qsrc)
				want, err := scratchAnswers(d, set, q, scratch)
				if err != nil {
					t.Fatal(err)
				}
				wantPossible, err := scratchPossible(d, set, q, scratch)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					opts := NewOptions()
					opts.Repair.Workers = workers
					got, err := ConsistentAnswers(d, set, q, opts)
					if err != nil {
						t.Fatalf("round %d set %d q=%q workers %d: %v", round, si, qsrc, workers, err)
					}
					if err := sameAnswerTuples(want, got, q); err != nil {
						t.Fatalf("round %d set %d q=%q workers %d: %v\nD=%v", round, si, qsrc, workers, err, d)
					}
					gotPossible, err := PossibleAnswers(d, set, q, opts)
					if err != nil {
						t.Fatal(err)
					}
					if len(gotPossible) != len(wantPossible) {
						t.Fatalf("round %d set %d q=%q workers %d: possible %d vs %d\nD=%v",
							round, si, qsrc, workers, len(gotPossible), len(wantPossible), d)
					}
					for i := range wantPossible {
						if !gotPossible[i].Equal(wantPossible[i]) {
							t.Fatalf("round %d set %d q=%q workers %d: possible tuple %d differs", round, si, qsrc, workers, i)
						}
					}
				}
			}
		}
	}
}

// scratchAnswers is the reference pipeline: full per-repair evaluation with
// query.EvalWith over a scratch-probe repair set.
func scratchAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, repairs []*relational.Instance) (Answer, error) {
	if q.IsBoolean() {
		ans := Answer{NumRepairs: len(repairs), Boolean: true}
		for _, r := range repairs {
			holds, err := query.EvalBool(r, q)
			if err != nil {
				return Answer{}, err
			}
			if !holds {
				ans.Boolean = false
			}
		}
		return ans, nil
	}
	certain := map[string]relational.Tuple{}
	for i, r := range repairs {
		tuples, err := query.EvalWith(r, q, query.Options{})
		if err != nil {
			return Answer{}, err
		}
		here := map[string]relational.Tuple{}
		for _, t := range tuples {
			here[t.Key()] = t
		}
		if i == 0 {
			certain = here
			continue
		}
		for k := range certain {
			if _, ok := here[k]; !ok {
				delete(certain, k)
			}
		}
	}
	return Answer{NumRepairs: len(repairs), Tuples: sortedTuples(certain)}, nil
}

func scratchPossible(d *relational.Instance, set *constraint.Set, q *query.Q, repairs []*relational.Instance) ([]relational.Tuple, error) {
	seen := map[string]relational.Tuple{}
	for _, r := range repairs {
		tuples, err := query.EvalWith(r, q, query.Options{})
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			seen[t.Key()] = t
		}
	}
	return sortedTuples(seen), nil
}

// sameAnswerTuples compares the cross-worker-stable parts of an answer:
// boolean verdict and the certain tuples (NumRepairs is skipped — the
// reference never short-circuits, the engine may).
func sameAnswerTuples(want, got Answer, q *query.Q) error {
	if q.IsBoolean() {
		if want.Boolean != got.Boolean {
			return fmt.Errorf("boolean answers differ: want %v, got %v", want.Boolean, got.Boolean)
		}
		return nil
	}
	if len(want.Tuples) != len(got.Tuples) {
		return fmt.Errorf("certain tuple counts differ: want %d, got %d", len(want.Tuples), len(got.Tuples))
	}
	for i := range want.Tuples {
		if !want.Tuples[i].Equal(got.Tuples[i]) {
			return fmt.Errorf("certain tuple %d differs: want %v, got %v", i, want.Tuples[i], got.Tuples[i])
		}
	}
	return nil
}

// TestScratchProbeOptionPlumbs makes sure the ablation knob actually reaches
// the search: with ScratchProbe both probes still agree on a workload whose
// diagnostics are content-determined.
func TestScratchProbeOptionPlumbs(t *testing.T) {
	d := relational.NewInstance(
		relational.F("r", value.Str("k"), value.Str("b")),
		relational.F("r", value.Str("k"), value.Str("c")),
	)
	set := parser.MustConstraints(`r(X, Y), r(X, Z) -> Y = Z.`)
	inc, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scr, err := repair.Repairs(d, set, repair.Options{ScratchProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Repairs) != 2 || len(scr.Repairs) != 2 || inc.StatesExplored != scr.StatesExplored {
		t.Fatalf("probe modes disagree: inc %d repairs/%d states, scratch %d/%d",
			len(inc.Repairs), inc.StatesExplored, len(scr.Repairs), scr.StatesExplored)
	}
}

// Package core ties the paper together: consistent query answering
// (Definition 8) under the null-aware repair semantics. A ground tuple t̄ is
// a consistent answer to Q on D wrt IC iff t̄ is an answer to Q in every
// repair of D; for boolean queries the consistent answer is yes iff the
// query holds in every repair.
//
// Two interchangeable engines are provided, mirroring the two halves of the
// paper:
//
//   - EngineSearch materializes Rep(D, IC) with the violation-driven search
//     of internal/repair (Sections 3–4);
//   - EngineProgram builds the repair program Π(D, IC) of Definition 9
//     (corrected variant by default), computes its stable models, and reads
//     each repair off the t**-annotated atoms (Section 5). Intersecting the
//     query answers across the induced repairs is exactly cautious
//     reasoning over the stable models extended with the query rules.
//
// Theorem 2 (decidability) is witnessed by both engines terminating on
// every non-conflicting input, including cyclic referential constraints.
package core

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/ground"
	"repro/internal/nullsem"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/stable"
)

// Engine selects how repairs are produced.
type Engine uint8

const (
	// EngineSearch uses the violation-driven repair search.
	EngineSearch Engine = iota
	// EngineProgram uses the Definition 9 repair program and its stable
	// models, materializing each repair and evaluating the query on it.
	EngineProgram
	// EngineProgramCautious runs the paper's Section 5 pipeline
	// end-to-end: the query is compiled to rules over the t**-annotated
	// predicates, appended to the repair program, and the consistent
	// answers are the cautious (certain) consequences of the combined
	// program — no repair is ever materialized.
	EngineProgramCautious
)

func (e Engine) String() string {
	switch e {
	case EngineProgram:
		return "program"
	case EngineProgramCautious:
		return "program-cautious"
	default:
		return "search"
	}
}

// Options configures consistent query answering.
type Options struct {
	Engine Engine
	// Variant selects the repair-program flavour for EngineProgram.
	// The zero value is repairprog.VariantPaper; NewOptions defaults to
	// the corrected variant, which is the one matching Theorem 4 on all
	// inputs.
	Variant repairprog.Variant
	// Repair configures the search engine.
	Repair repair.Options
	// Stable configures the model enumeration.
	Stable stable.Options
}

// NewOptions returns the default options: search engine, corrected
// program variant.
func NewOptions() Options {
	return Options{Variant: repairprog.VariantCorrected}
}

// Answer is the result of consistent query answering.
type Answer struct {
	// Tuples are the certain answers (sorted, distinct); nil for boolean
	// queries.
	Tuples []relational.Tuple
	// Boolean is the certain answer of a boolean query.
	Boolean bool
	// NumRepairs is the number of repairs inspected.
	NumRepairs int
}

// IsConsistent reports D |=_N IC.
func IsConsistent(d *relational.Instance, set *constraint.Set) bool {
	return nullsem.Satisfies(d, set, nullsem.NullAware)
}

// RepairsOf produces the repair set with the selected engine.
func RepairsOf(d *relational.Instance, set *constraint.Set, opts Options) ([]*relational.Instance, error) {
	switch opts.Engine {
	case EngineProgram, EngineProgramCautious:
		tr, err := repairprog.Build(d, set, opts.Variant)
		if err != nil {
			return nil, err
		}
		insts, _, err := tr.StableRepairs(opts.Stable)
		return insts, err
	default:
		res, err := repair.Repairs(d, set, opts.Repair)
		if err != nil {
			return nil, err
		}
		return res.Repairs, nil
	}
}

// ConsistentAnswers computes the consistent answers to q on d wrt set.
func ConsistentAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) (Answer, error) {
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	if opts.Engine == EngineProgramCautious {
		return cautiousAnswers(d, set, q, opts)
	}
	repairs, err := RepairsOf(d, set, opts)
	if err != nil {
		return Answer{}, err
	}
	if len(repairs) == 0 {
		return Answer{}, fmt.Errorf("core: empty repair set (Proposition 1 guarantees at least one repair; this indicates an engine limitation on this input)")
	}
	ans := Answer{NumRepairs: len(repairs)}
	if q.IsBoolean() {
		ans.Boolean = true
		for _, r := range repairs {
			holds, err := query.EvalBool(r, q)
			if err != nil {
				return Answer{}, err
			}
			if !holds {
				ans.Boolean = false
				break
			}
		}
		return ans, nil
	}

	certain := map[string]relational.Tuple{}
	for i, r := range repairs {
		tuples, err := query.Eval(r, q)
		if err != nil {
			return Answer{}, err
		}
		if i == 0 {
			for _, t := range tuples {
				certain[t.Key()] = t
			}
			continue
		}
		here := map[string]bool{}
		for _, t := range tuples {
			here[t.Key()] = true
		}
		for k := range certain {
			if !here[k] {
				delete(certain, k)
			}
		}
		if len(certain) == 0 {
			break
		}
	}
	for _, t := range certain {
		ans.Tuples = append(ans.Tuples, t)
	}
	sort.Slice(ans.Tuples, func(i, j int) bool { return ans.Tuples[i].Compare(ans.Tuples[j]) < 0 })
	return ans, nil
}

// cautiousAnswers implements EngineProgramCautious: cautious reasoning over
// the stable models of Π(D, IC) ∪ Π(q).
func cautiousAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) (Answer, error) {
	tr, err := repairprog.BuildWith(d, set, repairprog.BuildOptions{
		Variant:            opts.Variant,
		PruneUnconstrained: true,
	})
	if err != nil {
		return Answer{}, err
	}
	prog, err := tr.WithQuery(q)
	if err != nil {
		return Answer{}, err
	}
	gp, err := ground.Ground(prog)
	if err != nil {
		return Answer{}, err
	}
	models, err := stable.Models(gp, opts.Stable)
	if err != nil {
		return Answer{}, err
	}
	if len(models) == 0 {
		return Answer{}, fmt.Errorf("core: the repair program has no stable model")
	}

	repairKeys := map[string]bool{}
	for _, m := range models {
		repairKeys[tr.Interpret(gp, m).Key()] = true
	}
	ans := Answer{NumRepairs: len(repairKeys)}

	certain := map[string]relational.Tuple{}
	for i, m := range models {
		here := map[string]relational.Tuple{}
		for _, id := range m {
			f := gp.Atoms[id]
			if f.Pred == repairprog.AnswerPred {
				here[f.Args.Key()] = f.Args
			}
		}
		if i == 0 {
			certain = here
			continue
		}
		for k := range certain {
			if _, ok := here[k]; !ok {
				delete(certain, k)
			}
		}
	}
	if q.IsBoolean() {
		_, ans.Boolean = certain[relational.Tuple{}.Key()]
		return ans, nil
	}
	for _, t := range certain {
		ans.Tuples = append(ans.Tuples, t)
	}
	sort.Slice(ans.Tuples, func(i, j int) bool { return ans.Tuples[i].Compare(ans.Tuples[j]) < 0 })
	return ans, nil
}

// PossibleAnswers returns the tuples answering q in at least one repair
// (brave semantics) — the complement perspective the CQA literature uses
// when discussing the Π₂ᵖ upper bound.
func PossibleAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) ([]relational.Tuple, error) {
	repairs, err := RepairsOf(d, set, opts)
	if err != nil {
		return nil, err
	}
	seen := map[string]relational.Tuple{}
	for _, r := range repairs {
		tuples, err := query.Eval(r, q)
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			seen[t.Key()] = t
		}
	}
	out := make([]relational.Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// Package core ties the paper together: consistent query answering
// (Definition 8) under the null-aware repair semantics. A ground tuple t̄ is
// a consistent answer to Q on D wrt IC iff t̄ is an answer to Q in every
// repair of D; for boolean queries the consistent answer is yes iff the
// query holds in every repair.
//
// Two interchangeable engines are provided, mirroring the two halves of the
// paper:
//
//   - EngineSearch materializes Rep(D, IC) with the violation-driven search
//     of internal/repair (Sections 3–4);
//   - EngineProgram builds the repair program Π(D, IC) of Definition 9
//     (corrected variant by default), computes its stable models, and reads
//     each repair off the t**-annotated atoms (Section 5). Intersecting the
//     query answers across the induced repairs is exactly cautious
//     reasoning over the stable models extended with the query rules.
//
// Theorem 2 (decidability) is witnessed by both engines terminating on
// every non-conflicting input, including cyclic referential constraints.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/constraint"
	"repro/internal/ground"
	"repro/internal/nullsem"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/repairprog"
	"repro/internal/stable"
)

// Engine selects how repairs are produced.
type Engine uint8

const (
	// EngineSearch uses the violation-driven repair search.
	EngineSearch Engine = iota
	// EngineProgram uses the Definition 9 repair program and its stable
	// models, materializing each repair and evaluating the query on it.
	EngineProgram
	// EngineProgramCautious runs the paper's Section 5 pipeline
	// end-to-end: the query is compiled to rules over the t**-annotated
	// predicates, appended to the repair program, and the consistent
	// answers are the cautious (certain) consequences of the combined
	// program — no repair is ever materialized.
	EngineProgramCautious
)

func (e Engine) String() string {
	switch e {
	case EngineProgram:
		return "program"
	case EngineProgramCautious:
		return "program-cautious"
	default:
		return "search"
	}
}

// Options configures consistent query answering.
type Options struct {
	Engine Engine
	// Variant selects the repair-program flavour for EngineProgram.
	// The zero value is repairprog.VariantPaper; NewOptions defaults to
	// the corrected variant, which is the one matching Theorem 4 on all
	// inputs.
	Variant repairprog.Variant
	// Repair configures the search engine.
	Repair repair.Options
	// Stable configures the model enumeration.
	Stable stable.Options
	// Ground configures the grounding of the repair program (worker pool,
	// naive-fixpoint ablation). The answers are identical for every
	// setting.
	Ground ground.Options
}

// NewOptions returns the default options: search engine, corrected
// program variant.
func NewOptions() Options {
	return Options{Variant: repairprog.VariantCorrected}
}

// Answer is the result of consistent query answering.
type Answer struct {
	// Tuples are the certain answers (sorted, distinct); nil for boolean
	// queries.
	Tuples []relational.Tuple
	// Boolean is the certain answer of a boolean query.
	Boolean bool
	// NumRepairs is the number of repairs inspected. After a short-circuit
	// it is 1: the confirmed-minimal counterexample is the only candidate
	// established as a repair when the search stops.
	NumRepairs int
	// StatesExplored counts the search states visited when the search
	// engine produced the answer (0 for the program engines). After a
	// short-circuit with Workers <= 1 it is strictly below the
	// full-enumeration count; parallel cancellation is best-effort, so
	// in-flight workers may have admitted further states by the time the
	// stop propagates.
	StatesExplored int
	// ShortCircuited reports that the engine stopped at the first
	// counterexample instead of enumerating exhaustively. Only boolean
	// queries short-circuit, and only when the certain answer is no: the
	// search engine stops at the first confirmed-minimal falsifying leaf,
	// and the program engines stop at the first stable model whose induced
	// repair (EngineProgram) or answer-atom set (EngineProgramCautious)
	// falsifies the query — a stable model is a repair outright
	// (Theorem 4), so no certificate is needed. After a program-engine
	// short-circuit NumRepairs counts the distinct repairs seen up to and
	// including the counterexample.
	//
	// Boolean and Tuples are identical for every Repair.Workers and
	// Stable.Workers value; NumRepairs, StatesExplored and ShortCircuited
	// are diagnostics that are deterministic for the program engines and
	// for search Workers <= 1, but can vary with scheduling for larger
	// search worker counts (leaf arrival order decides which falsifying
	// candidates spend the certificate budget).
	ShortCircuited bool
}

// IsConsistent reports D |=_N IC.
func IsConsistent(d *relational.Instance, set *constraint.Set) bool {
	return nullsem.Satisfies(d, set, nullsem.NullAware)
}

// RepairsOf produces the repair set with the selected engine.
func RepairsOf(d *relational.Instance, set *constraint.Set, opts Options) ([]*relational.Instance, error) {
	switch opts.Engine {
	case EngineProgram, EngineProgramCautious:
		tr, err := repairprog.Build(d, set, opts.Variant)
		if err != nil {
			return nil, err
		}
		tr.GroundOptions = opts.Ground
		insts, _, err := tr.StableRepairs(opts.Stable)
		return insts, err
	default:
		res, err := repair.Repairs(d, set, opts.Repair)
		if err != nil {
			return nil, err
		}
		return res.Repairs, nil
	}
}

// ConsistentAnswers computes the consistent answers to q on d wrt set.
//
// With the search engine the answer is computed incrementally on the repair
// stream (see searchAnswers): boolean certain answers short-circuit the
// whole enumeration at the first confirmed-minimal counterexample.
func ConsistentAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) (Answer, error) {
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	switch opts.Engine {
	case EngineProgramCautious:
		return cautiousAnswers(d, set, q, opts)
	case EngineProgram:
		return materializedAnswers(d, set, q, opts)
	default:
		return searchAnswers(d, set, q, opts)
	}
}

// errEmptyRepairSet guards the Proposition 1 invariant.
var errEmptyRepairSet = fmt.Errorf("core: empty repair set (Proposition 1 guarantees at least one repair; this indicates an engine limitation on this input)")

// maxConfirmAttempts bounds how many falsifying leaves a boolean search
// answer will try to certify with ConfirmMinimal before falling back to
// plain full enumeration.
const maxConfirmAttempts = 8

// searchAnswers implements EngineSearch on the streaming repair search:
// leaves feed the online ≤_D antichain and the certain answers are the
// incremental intersection over the candidates that survive the stream.
//
// Boolean queries are evaluated eagerly, one evaluation per candidate that
// enters the surviving set (evaluations of displaced candidates are dropped
// with them): the moment a falsifying leaf carries a ConfirmMinimal
// certificate, it is a repair no matter what the rest of the search would
// find, so the certain answer is already no and the whole search is
// cancelled. Non-boolean queries can never short-circuit (their NumRepairs
// is part of the cross-engine contract), so they evaluate only the final
// survivors — never a displaced candidate.
func searchAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) (Answer, error) {
	if !q.IsBoolean() {
		repairs, stats, err := streamRepairs(d, set, opts)
		if err != nil {
			return Answer{}, err
		}
		ans := Answer{NumRepairs: len(repairs), StatesExplored: stats.StatesExplored}
		if ans.Tuples, err = certainTuples(d, repairs, q); err != nil {
			return Answer{}, err
		}
		return ans, nil
	}

	// One base evaluation of q on D; every leaf is answered by patching
	// that result along Δ(D, leaf) — O(|Δ|) anchored joins instead of a
	// full per-leaf evaluation.
	be, err := query.NewBaseEval(d, q)
	if err != nil {
		return Answer{}, err
	}
	ac := repair.NewAntichain(d, opts.Repair.Mode)
	holdsBy := map[*relational.Instance]bool{}
	short := false
	// A failed certificate costs up to 2^ConfirmLimit consistency checks
	// (the falsifying leaf is minimal so far, but its dominator arrives
	// later), so stop attempting after a few misses: the stream still
	// completes and the final answer is unchanged.
	confirmBudget := maxConfirmAttempts
	stats, err := repair.Enumerate(d, set, opts.Repair, func(leaf *relational.Instance) bool {
		minimal, displaced := ac.Add(leaf)
		for _, m := range displaced {
			delete(holdsBy, m)
		}
		if !minimal {
			return true
		}
		holds := len(be.EvalOn(leaf)) > 0
		holdsBy[leaf] = holds
		if !holds && confirmBudget > 0 {
			confirmBudget--
			if repair.ConfirmMinimal(d, leaf, set, opts.Repair) {
				short = true
				return false
			}
		}
		return true
	})
	if err != nil {
		return Answer{}, err
	}
	ans := Answer{StatesExplored: stats.StatesExplored}
	if short {
		ans.ShortCircuited = true
		// Exactly one repair — the confirmed counterexample — has been
		// established; report that, deterministically across worker
		// counts (the surviving-candidate count at the cancellation
		// point is scheduling-dependent for Workers > 1).
		ans.NumRepairs = 1
		return ans, nil
	}
	if stats.Leaves == 0 {
		return Answer{}, errEmptyRepairSet
	}
	repairs, _ := ac.Results()
	ans.NumRepairs = len(repairs)
	ans.Boolean = true
	for _, r := range repairs {
		if !holdsBy[r] {
			ans.Boolean = false
			break
		}
	}
	return ans, nil
}

// streamRepairs materializes the repair set through the streaming search and
// online antichain, returning the survivors in canonical order.
func streamRepairs(d *relational.Instance, set *constraint.Set, opts Options) ([]*relational.Instance, repair.Stats, error) {
	ac := repair.NewAntichain(d, opts.Repair.Mode)
	stats, err := repair.Enumerate(d, set, opts.Repair, func(leaf *relational.Instance) bool {
		ac.Add(leaf)
		return true
	})
	if err != nil {
		return nil, repair.Stats{}, err
	}
	if stats.Leaves == 0 {
		return nil, repair.Stats{}, errEmptyRepairSet
	}
	repairs, _ := ac.Results()
	return repairs, stats, nil
}

// materializedAnswers implements EngineProgram on the stable-model stream:
// each distinct induced repair is evaluated as its first model arrives. A
// boolean query short-circuits at the first falsifying repair — every
// stable model of Π(D, IC) induces a repair (Theorem 4), so the certain
// answer is already no and the rest of the enumeration is cancelled.
// Non-boolean queries enumerate fully (their NumRepairs is part of the
// cross-engine differential contract) and intersect per-repair evaluations.
func materializedAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) (Answer, error) {
	if !q.IsBoolean() {
		repairs, err := RepairsOf(d, set, opts)
		if err != nil {
			return Answer{}, err
		}
		if len(repairs) == 0 {
			return Answer{}, errEmptyRepairSet
		}
		ans := Answer{NumRepairs: len(repairs)}
		if ans.Tuples, err = certainTuples(d, repairs, q); err != nil {
			return Answer{}, err
		}
		return ans, nil
	}
	tr, err := repairprog.Build(d, set, opts.Variant)
	if err != nil {
		return Answer{}, err
	}
	tr.GroundOptions = opts.Ground
	be, err := query.NewBaseEval(d, q)
	if err != nil {
		return Answer{}, err
	}
	seen := relational.NewInstanceSet()
	holds := true
	short := false
	if err := tr.StreamRepairs(opts.Stable, func(inst *relational.Instance, delta relational.Delta, _ stable.Model) bool {
		if !seen.Add(inst) {
			return true
		}
		if len(be.EvalDelta(inst, delta)) == 0 {
			holds = false
			short = true
			return false
		}
		return true
	}); err != nil {
		return Answer{}, err
	}
	if seen.Len() == 0 {
		return Answer{}, errEmptyRepairSet
	}
	return Answer{NumRepairs: seen.Len(), Boolean: holds, ShortCircuited: short}, nil
}

// certainTuples intersects the answers of q across the repairs, breaking off
// as soon as the intersection empties. q is evaluated in full once, on the
// original instance d; each repair's answer set is then computed by patching
// that base result along Δ(d, repair), so k repairs cost one evaluation plus
// k·O(|Δ|) anchored joins rather than k full joins. Answer sets arrive
// sorted (Tuple.Compare), so the running intersection is a linear merge with
// no per-repair key maps.
func certainTuples(d *relational.Instance, repairs []*relational.Instance, q *query.Q) ([]relational.Tuple, error) {
	be, err := query.NewBaseEval(d, q)
	if err != nil {
		return nil, err
	}
	var certain []relational.Tuple
	for i, r := range repairs {
		tuples := be.EvalOn(r)
		if i == 0 {
			certain = tuples
			continue
		}
		certain = intersectSorted(certain, tuples)
		if len(certain) == 0 {
			break
		}
	}
	return certain, nil
}

// intersectSorted intersects two Compare-sorted distinct tuple lists with a
// two-pointer walk, preserving order.
func intersectSorted(a, b []relational.Tuple) []relational.Tuple {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// deltaKey is a canonical encoding of a repair delta (halves sorted by the
// Delta contract): two repairs of one base coincide iff their keys do.
func deltaKey(dl relational.Delta) string {
	var b strings.Builder
	for _, f := range dl.Removed {
		b.WriteByte('-')
		b.WriteString(f.Key())
		b.WriteByte(0)
	}
	for _, f := range dl.Added {
		b.WriteByte('+')
		b.WriteString(f.Key())
		b.WriteByte(0)
	}
	return b.String()
}

// sortedTuples flattens a keyed tuple set into Compare order.
func sortedTuples(m map[string]relational.Tuple) []relational.Tuple {
	if len(m) == 0 {
		return nil
	}
	out := make([]relational.Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// cautiousAnswers implements EngineProgramCautious: cautious reasoning over
// the stable models of Π(D, IC) ∪ Π(q), computed on the model stream. The
// certain answers are the running intersection of each model's answer
// atoms; a boolean query short-circuits the moment a model lacks the answer
// atom — that model witnesses a repair falsifying the query, so the certain
// answer is already no and the enumeration is cancelled. Non-boolean
// queries enumerate fully: NumRepairs (the distinct induced repairs) is
// part of the cross-engine differential contract.
func cautiousAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) (Answer, error) {
	tr, err := cautiousTranslation(d, set, opts)
	if err != nil {
		return Answer{}, err
	}
	return cautiousQuery(tr, q, opts)
}

// CautiousMany computes the consistent answers of several queries over one
// (D, IC) session with the cautious program engine, amortizing the shared
// work: the repair program Π(D, IC) is built and ground once, and each
// query grounds only its own rules against the retained base grounding
// (ground.Extend) before running its own cautious model enumeration.
// Answers[i] is exactly what ConsistentAnswers with EngineProgramCautious
// returns for queries[i]; opts.Engine is ignored.
func CautiousMany(d *relational.Instance, set *constraint.Set, queries []*query.Q, opts Options) ([]Answer, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	tr, err := cautiousTranslation(d, set, opts)
	if err != nil {
		return nil, err
	}
	out := make([]Answer, len(queries))
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if out[i], err = cautiousQuery(tr, q, opts); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// cautiousTranslation builds the pruned repair program one cautious session
// shares across its queries.
func cautiousTranslation(d *relational.Instance, set *constraint.Set, opts Options) (*repairprog.Translation, error) {
	tr, err := repairprog.BuildWith(d, set, repairprog.BuildOptions{
		Variant:            opts.Variant,
		PruneUnconstrained: true,
	})
	if err != nil {
		return nil, err
	}
	tr.GroundOptions = opts.Ground
	return tr, nil
}

// cautiousQuery answers one query over the translation's cached base
// grounding: the query rules are ground against the retained possible-set
// snapshot (no re-grounding, no Facts/Rules copy), and the stable models of
// the extended program drive the cautious intersection.
func cautiousQuery(tr *repairprog.Translation, q *query.Q, opts Options) (Answer, error) {
	gp, err := tr.GroundWithQuery(q)
	if err != nil {
		return Answer{}, err
	}

	boolean := q.IsBoolean()
	emptyKey := relational.Tuple{}.Key()
	// The distinct-repair count (part of the cross-engine contract) needs
	// no materialized instances: every repair is determined by its delta
	// against the shared base, so a canonical delta-key set dedups in
	// O(|Δ|) per model with no instance build at all.
	reader := tr.NewModelReader(gp)
	repairSeen := map[string]bool{}
	certain := map[string]relational.Tuple{}
	first := true
	short := false
	if err := stable.Enumerate(gp, opts.Stable, func(m stable.Model) bool {
		repairSeen[deltaKey(reader.Delta(m))] = true
		here := map[string]relational.Tuple{}
		for _, id := range m {
			f := gp.Atoms[id]
			if f.Pred == repairprog.AnswerPred {
				here[f.Args.Key()] = f.Args
			}
		}
		if first {
			first = false
			certain = here
		} else {
			for k := range certain {
				if _, ok := here[k]; !ok {
					delete(certain, k)
				}
			}
		}
		if boolean {
			if _, ok := certain[emptyKey]; !ok {
				short = true
				return false
			}
		}
		return true
	}); err != nil {
		return Answer{}, err
	}
	if first {
		return Answer{}, fmt.Errorf("core: the repair program has no stable model")
	}

	ans := Answer{NumRepairs: len(repairSeen), ShortCircuited: short}
	if boolean {
		_, ans.Boolean = certain[emptyKey]
		return ans, nil
	}
	ans.Tuples = sortedTuples(certain)
	return ans, nil
}

// PossibleAnswers returns the tuples answering q in at least one repair
// (brave semantics) — the complement perspective the CQA literature uses
// when discussing the Π₂ᵖ upper bound. With the search engine the repair
// set comes from the streaming search and online antichain, and only the
// surviving candidates are ever evaluated. The program engines ride the
// stable-model stream, evaluating each distinct induced repair as its first
// model arrives; a boolean query cancels the enumeration at the first
// repair satisfying it (its possible answer can only be yes from then on).
func PossibleAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) ([]relational.Tuple, error) {
	if opts.Engine != EngineSearch {
		return possibleProgramAnswers(d, set, q, opts)
	}
	repairs, _, err := streamRepairs(d, set, opts)
	if err != nil {
		return nil, err
	}
	be, err := query.NewBaseEval(d, q)
	if err != nil {
		return nil, err
	}
	seen := map[string]relational.Tuple{}
	for _, r := range repairs {
		for _, t := range be.EvalOn(r) {
			seen[t.Key()] = t
		}
	}
	return sortedTuples(seen), nil
}

// possibleProgramAnswers unions per-repair answers over the stable-model
// stream of Π(D, IC).
func possibleProgramAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) ([]relational.Tuple, error) {
	tr, err := repairprog.Build(d, set, opts.Variant)
	if err != nil {
		return nil, err
	}
	tr.GroundOptions = opts.Ground
	be, err := query.NewBaseEval(d, q)
	if err != nil {
		return nil, err
	}
	boolean := q.IsBoolean()
	seenRepair := relational.NewInstanceSet()
	seen := map[string]relational.Tuple{}
	if err := tr.StreamRepairs(opts.Stable, func(inst *relational.Instance, delta relational.Delta, _ stable.Model) bool {
		if !seenRepair.Add(inst) {
			return true
		}
		for _, t := range be.EvalDelta(inst, delta) {
			seen[t.Key()] = t
		}
		return !(boolean && len(seen) > 0)
	}); err != nil {
		return nil, err
	}
	return sortedTuples(seen), nil
}

// Package core ties the paper together: consistent query answering
// (Definition 8) under the null-aware repair semantics. A ground tuple t̄ is
// a consistent answer to Q on D wrt IC iff t̄ is an answer to Q in every
// repair of D; for boolean queries the consistent answer is yes iff the
// query holds in every repair.
//
// Since the session refactor the engines live in internal/session: a
// Session owns the maintained violation lists, repair cache, translation
// and prepared queries for one (D, IC) pair, and every one-shot entry
// point here is a thin adapter over a throwaway session. Callers that
// answer more than once against the same instance should hold a
// session.Session instead and Apply updates to it.
//
// Two interchangeable engines are provided, mirroring the two halves of the
// paper:
//
//   - EngineSearch materializes Rep(D, IC) with the violation-driven search
//     of internal/repair (Sections 3–4);
//   - EngineProgram builds the repair program Π(D, IC) of Definition 9
//     (corrected variant by default), computes its stable models, and reads
//     each repair off the t**-annotated atoms (Section 5). Intersecting the
//     query answers across the induced repairs is exactly cautious
//     reasoning over the stable models extended with the query rules.
//
// Theorem 2 (decidability) is witnessed by both engines terminating on
// every non-conflicting input, including cyclic referential constraints.
package core

import (
	"context"
	"sort"

	"repro/internal/constraint"
	"repro/internal/nullsem"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/session"
)

// Engine selects how repairs are produced. See session.Engine.
type Engine = session.Engine

const (
	// EngineSearch uses the violation-driven repair search.
	EngineSearch = session.EngineSearch
	// EngineProgram uses the Definition 9 repair program and its stable
	// models, materializing each repair and evaluating the query on it.
	EngineProgram = session.EngineProgram
	// EngineProgramCautious computes the consistent answers as the
	// cautious consequences of the repair program extended with the query
	// rules — no repair is ever materialized.
	EngineProgramCautious = session.EngineProgramCautious
	// EngineDirect answers FD-only sets from the repair-less polynomial
	// classification (internal/direct) — no repair is ever enumerated.
	EngineDirect = session.EngineDirect
	// EngineAuto routes by constraint class: FD-only sets take
	// EngineDirect, everything else EngineSearch.
	EngineAuto = session.EngineAuto
)

// Options configures consistent query answering. See session.Options.
type Options = session.Options

// Answer is the result of consistent query answering. See session.Answer.
type Answer = session.Answer

// NewOptions returns the default options: search engine, corrected
// program variant.
func NewOptions() Options {
	return session.NewOptions()
}

// IsConsistent reports D |=_N IC.
func IsConsistent(d *relational.Instance, set *constraint.Set) bool {
	return nullsem.Satisfies(d, set, nullsem.NullAware)
}

// RepairsOf produces the repair set with the selected engine.
func RepairsOf(d *relational.Instance, set *constraint.Set, opts Options) ([]*relational.Instance, error) {
	return session.New(d, set, opts).Repairs()
}

// RepairsOfCtx is RepairsOf under a context: cancellation aborts the
// enumeration and returns ctx.Err().
func RepairsOfCtx(ctx context.Context, d *relational.Instance, set *constraint.Set, opts Options) ([]*relational.Instance, error) {
	return session.New(d, set, opts).RepairsCtx(ctx)
}

// ConsistentAnswers computes the consistent answers to q on d wrt set.
//
// With the search engine the answer is computed incrementally on the repair
// stream: boolean certain answers short-circuit the whole enumeration at
// the first confirmed-minimal counterexample.
func ConsistentAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) (Answer, error) {
	return session.New(d, set, opts).Answer(q)
}

// ConsistentAnswersCtx is ConsistentAnswers under a context: cancellation
// aborts the repair/stable enumeration and returns ctx.Err().
func ConsistentAnswersCtx(ctx context.Context, d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) (Answer, error) {
	return session.New(d, set, opts).AnswerCtx(ctx, q)
}

// CautiousMany computes the consistent answers of several queries over one
// (D, IC) session with the cautious program engine, amortizing the shared
// work: the repair program Π(D, IC) is built and ground once, and each
// query grounds only its own rules against the retained base grounding
// (ground.Extend) before running its own cautious model enumeration.
// Answers[i] is exactly what ConsistentAnswers with EngineProgramCautious
// returns for queries[i]; opts.Engine is ignored.
func CautiousMany(d *relational.Instance, set *constraint.Set, queries []*query.Q, opts Options) ([]Answer, error) {
	return CautiousManyCtx(context.Background(), d, set, queries, opts)
}

// CautiousManyCtx is CautiousMany under a context, checked between queries
// and inside each query's model enumeration.
func CautiousManyCtx(ctx context.Context, d *relational.Instance, set *constraint.Set, queries []*query.Q, opts Options) ([]Answer, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	opts.Engine = EngineProgramCautious
	s := session.New(d, set, opts)
	out := make([]Answer, len(queries))
	var err error
	for i, q := range queries {
		if out[i], err = s.AnswerCtx(ctx, q); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PossibleAnswers returns the tuples answering q in at least one repair
// (brave semantics) — the complement perspective the CQA literature uses
// when discussing the Π₂ᵖ upper bound. With the search engine the repair
// set comes from the streaming search and online antichain, and only the
// surviving candidates are ever evaluated. The program engines ride the
// stable-model stream, evaluating each distinct induced repair as its first
// model arrives; a boolean query cancels the enumeration at the first
// repair satisfying it (its possible answer can only be yes from then on).
func PossibleAnswers(d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) ([]relational.Tuple, error) {
	return session.New(d, set, opts).Possible(q)
}

// PossibleAnswersCtx is PossibleAnswers under a context.
func PossibleAnswersCtx(ctx context.Context, d *relational.Instance, set *constraint.Set, q *query.Q, opts Options) ([]relational.Tuple, error) {
	return session.New(d, set, opts).PossibleCtx(ctx, q)
}

// sortedTuples flattens a keyed tuple set into Compare order. Retained for
// the reference implementations in the differential tests.
func sortedTuples(m map[string]relational.Tuple) []relational.Tuple {
	if len(m) == 0 {
		return nil
	}
	out := make([]relational.Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

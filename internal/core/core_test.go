package core

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/repairprog"
	"repro/internal/value"
)

// example15 is the Course/Student scenario of Examples 14-15 in parser
// syntax.
func example15() (d *relational.Instance, setSrc string) {
	return parser.MustInstance(`
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		student(45, "Paul").
	`), `course(Id, Code) -> student(Id, Name).`
}

func engines() []Options {
	search := NewOptions()
	program := NewOptions()
	program.Engine = EngineProgram
	cautious := NewOptions()
	cautious.Engine = EngineProgramCautious
	return []Options{search, program, cautious}
}

func TestIsConsistent(t *testing.T) {
	d, setSrc := example15()
	set := parser.MustConstraints(setSrc)
	if IsConsistent(d, set) {
		t.Error("Example 15 database must be inconsistent")
	}
	d2 := parser.MustInstance(`course(21, c15). student(21, "Ann").`)
	if !IsConsistent(d2, set) {
		t.Error("repaired database must be consistent")
	}
}

func TestConsistentAnswersOpenQuery(t *testing.T) {
	d, setSrc := example15()
	set := parser.MustConstraints(setSrc)
	q := parser.MustQuery(`q(Id, Code) :- course(Id, Code).`)
	for _, opts := range engines() {
		ans, err := ConsistentAnswers(d, set, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ans.NumRepairs != 2 {
			t.Errorf("engine %v: repairs = %d, want 2", opts.Engine, ans.NumRepairs)
		}
		// course(34,c18) is deleted in one repair: only (21,c15) is
		// certain.
		if len(ans.Tuples) != 1 || !ans.Tuples[0].Equal(relational.Tuple{value.Int(21), value.Str("c15")}) {
			t.Errorf("engine %v: answers = %v", opts.Engine, ans.Tuples)
		}
	}
}

func TestConsistentAnswersSurviveInsertionRepair(t *testing.T) {
	d, setSrc := example15()
	set := parser.MustConstraints(setSrc)
	// Students: the inserted student(34, null) exists in only one
	// repair, so 34 is not a certain student id; 21 and 45 are.
	q := parser.MustQuery(`q(Id) :- student(Id, Name).`)
	for _, opts := range engines() {
		ans, err := ConsistentAnswers(d, set, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Tuples) != 2 {
			t.Fatalf("engine %v: answers = %v", opts.Engine, ans.Tuples)
		}
		if !ans.Tuples[0].Equal(relational.Tuple{value.Int(21)}) ||
			!ans.Tuples[1].Equal(relational.Tuple{value.Int(45)}) {
			t.Errorf("engine %v: answers = %v", opts.Engine, ans.Tuples)
		}
	}
}

func TestConsistentAnswersBoolean(t *testing.T) {
	d, setSrc := example15()
	set := parser.MustConstraints(setSrc)
	yes := parser.MustQuery(`q :- course(21, c15).`)
	no := parser.MustQuery(`q :- course(34, c18).`)
	for _, opts := range engines() {
		ans, err := ConsistentAnswers(d, set, yes, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Boolean {
			t.Errorf("engine %v: course(21,c15) must be certain", opts.Engine)
		}
		ans, err = ConsistentAnswers(d, set, no, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Boolean {
			t.Errorf("engine %v: course(34,c18) must not be certain", opts.Engine)
		}
	}
}

func TestConsistentDatabaseAnswersDirectly(t *testing.T) {
	d := parser.MustInstance(`course(21, c15). student(21, "Ann").`)
	set := parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`)
	q := parser.MustQuery(`q(Id) :- course(Id, Code).`)
	for _, opts := range engines() {
		ans, err := ConsistentAnswers(d, set, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ans.NumRepairs != 1 || len(ans.Tuples) != 1 {
			t.Errorf("engine %v: answer = %+v", opts.Engine, ans)
		}
	}
}

func TestPossibleAnswers(t *testing.T) {
	d, setSrc := example15()
	set := parser.MustConstraints(setSrc)
	q := parser.MustQuery(`q(Id) :- student(Id, Name).`)
	got, err := PossibleAnswers(d, set, q, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 21 and 45 certain, 34 possible via the insertion repair.
	if len(got) != 3 {
		t.Errorf("possible answers = %v", got)
	}
}

func TestEnginesAgree(t *testing.T) {
	// Example 19 with a query over both relations.
	d := parser.MustInstance(`
		r(a, b).
		r(a, c).
		s(e, f).
		s(null, a).
	`)
	set := parser.MustConstraints(`
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
		r(X, Y), isnull(X) -> false.
	`)
	queries := []string{
		`q(X) :- r(X, Y).`,
		`q(X, Y) :- r(X, Y).`,
		`q(U) :- s(U, V), r(V, W).`,
		`q :- r(a, b).`,
	}
	for _, qsrc := range queries {
		q := parser.MustQuery(qsrc)
		search, err := ConsistentAnswers(d, set, q, NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, engine := range []Engine{EngineProgram, EngineProgramCautious} {
			opts := NewOptions()
			opts.Engine = engine
			got, err := ConsistentAnswers(d, set, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if search.Boolean != got.Boolean || len(search.Tuples) != len(got.Tuples) {
				t.Errorf("query %q: %v disagrees with search: %+v vs %+v", qsrc, engine, got, search)
				continue
			}
			for i := range search.Tuples {
				if !search.Tuples[i].Equal(got.Tuples[i]) {
					t.Errorf("query %q via %v: tuple %d differs: %v vs %v",
						qsrc, engine, i, search.Tuples[i], got.Tuples[i])
				}
			}
		}
	}
}

func TestCautiousEngineWithNegationAndUnconstrained(t *testing.T) {
	// A query with negation over a mixed (constrained + unconstrained)
	// schema: the cautious engine must agree with the search engine.
	d := parser.MustInstance(`
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		flagged(34).
	`)
	set := parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`)
	q := parser.MustQuery(`q(Id) :- course(Id, Code), not flagged(Id).`)
	search, err := ConsistentAnswers(d, set, q, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions()
	opts.Engine = EngineProgramCautious
	cautious, err := ConsistentAnswers(d, set, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(search.Tuples) != 1 || len(cautious.Tuples) != 1 {
		t.Fatalf("answers: search=%v cautious=%v", search.Tuples, cautious.Tuples)
	}
	if !search.Tuples[0].Equal(cautious.Tuples[0]) {
		t.Errorf("answers differ: %v vs %v", search.Tuples[0], cautious.Tuples[0])
	}
}

func TestPaperVariantOption(t *testing.T) {
	// The paper-faithful program variant is selectable and works on the
	// paper's own examples.
	d := parser.MustInstance(`
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		student(45, "Paul").
	`)
	set := parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`)
	opts := Options{Engine: EngineProgram, Variant: repairprog.VariantPaper}
	repairs, err := RepairsOf(d, set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Errorf("paper variant repairs = %d, want 2", len(repairs))
	}
}

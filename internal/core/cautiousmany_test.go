package core

import (
	"testing"

	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/query"
)

func cautiousFixture() (d, setSrc string) {
	return `
		r(a, b).
		r(a, c).
		s(e, f).
		s(null, a).
	`, `
		r(X, Y), r(X, Z) -> Y = Z.
		s(U, V) -> r(V, W).
		r(X, Y), isnull(X) -> false.
	`
}

var cautiousQueries = []string{
	`q(X) :- r(X, Y).`,
	`q(X, Y) :- r(X, Y).`,
	`q(U) :- s(U, V), r(V, W).`,
	`q(X) :- r(X, Y), not s(Y, X).`,
	`q :- r(a, b).`,
	`q :- r(a, z).`,
}

// TestCautiousManyMatchesSingle pins CautiousMany's contract: Answers[i] is
// exactly what ConsistentAnswers with the cautious engine returns for
// queries[i], while the repair program is built and ground only once.
func TestCautiousManyMatchesSingle(t *testing.T) {
	dsrc, setSrc := cautiousFixture()
	d := parser.MustInstance(dsrc)
	set := parser.MustConstraints(setSrc)
	opts := NewOptions()
	var queries []*query.Q
	for _, qsrc := range cautiousQueries {
		queries = append(queries, parser.MustQuery(qsrc))
	}
	many, err := CautiousMany(d, set, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != len(queries) {
		t.Fatalf("answers = %d, want %d", len(many), len(queries))
	}
	single := NewOptions()
	single.Engine = EngineProgramCautious
	for i, q := range queries {
		want, err := ConsistentAnswers(d, set, q, single)
		if err != nil {
			t.Fatal(err)
		}
		got := many[i]
		if got.Boolean != want.Boolean || got.NumRepairs != want.NumRepairs ||
			got.ShortCircuited != want.ShortCircuited || len(got.Tuples) != len(want.Tuples) {
			t.Errorf("query %q: CautiousMany=%+v, single=%+v", cautiousQueries[i], got, want)
			continue
		}
		for j := range want.Tuples {
			if !got.Tuples[j].Equal(want.Tuples[j]) {
				t.Errorf("query %q tuple %d: %v vs %v", cautiousQueries[i], j, got.Tuples[j], want.Tuples[j])
			}
		}
	}
	if empty, err := CautiousMany(d, set, nil, opts); err != nil || empty != nil {
		t.Errorf("empty query list: %v, %v", empty, err)
	}
}

// TestGroundOptionsDifferential runs the program engines with every
// grounding configuration — semi-naive, naive ablation, parallel — and
// checks the answers are identical: grounding options must never change
// semantics.
func TestGroundOptionsDifferential(t *testing.T) {
	dsrc, setSrc := cautiousFixture()
	d := parser.MustInstance(dsrc)
	set := parser.MustConstraints(setSrc)
	grounds := []ground.Options{{}, {Naive: true}, {Workers: 4}, {Naive: true, Workers: 4}}
	for _, engine := range []Engine{EngineProgram, EngineProgramCautious} {
		for _, qsrc := range cautiousQueries {
			q := parser.MustQuery(qsrc)
			base := NewOptions()
			base.Engine = engine
			want, err := ConsistentAnswers(d, set, q, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range grounds[1:] {
				opts := NewOptions()
				opts.Engine = engine
				opts.Ground = g
				got, err := ConsistentAnswers(d, set, q, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got.Boolean != want.Boolean || len(got.Tuples) != len(want.Tuples) {
					t.Errorf("engine %v, query %q, ground %+v: %+v vs %+v", engine, qsrc, g, got, want)
					continue
				}
				for j := range want.Tuples {
					if !got.Tuples[j].Equal(want.Tuples[j]) {
						t.Errorf("engine %v, query %q, ground %+v: tuple %d differs", engine, qsrc, g, j)
					}
				}
			}
		}
	}
}

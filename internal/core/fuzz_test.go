package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/value"
)

// TestDifferentialEngines cross-validates the three CQA engines on
// randomized instances, constraint sets and queries. Any disagreement is a
// bug in one of three independently implemented pipelines (search +
// per-repair evaluation, stable models + per-repair evaluation, cautious
// reasoning over the combined program), so this is the strongest single
// correctness check in the suite.
func TestDifferentialEngines(t *testing.T) {
	sets := []*constraint.Set{
		parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`),
		parser.MustConstraints(`
			r(X, Y), r(X, Z) -> Y = Z.
			s(U, V) -> r(V, W).
		`),
		parser.MustConstraints(`
			p(X) -> q(X) | t(X).
			q(X), t(X) -> false.
		`),
		parser.MustConstraints(`
			r(X, Y), isnull(X) -> false.
			s(U, V) -> r(V, W).
		`),
	}
	queries := [][]string{
		{`q(Id) :- student(Id, Name).`, `q(Id, Code) :- course(Id, Code).`, `q :- course(21, c15).`},
		{`q(V) :- s(U, V).`, `q(X, Y) :- r(X, Y).`, `q(U) :- s(U, V), r(V, W).`},
		{`q(X) :- p(X), not t(X).`, `q(X) :- q(X).`, `q :- t(a).`},
		{`q(X) :- r(X, Y).`, `q(V) :- s(U, V), not r(V, V).`},
	}
	rng := rand.New(rand.NewSource(2026))
	vals := []value.V{value.Str("a"), value.Str("b"), value.Null(), value.Int(21)}
	pick := func() value.V { return vals[rng.Intn(len(vals))] }

	gen := func(si int) *relational.Instance {
		d := relational.NewInstance()
		switch si {
		case 0:
			d.Insert(relational.F("course", value.Int(21), value.Str("c15")))
			for k := 0; k < rng.Intn(3); k++ {
				d.Insert(relational.F("course", pick(), pick()))
			}
			for k := 0; k < rng.Intn(3); k++ {
				d.Insert(relational.F("student", pick(), pick()))
			}
		case 1, 3:
			for k := 0; k < 1+rng.Intn(3); k++ {
				d.Insert(relational.F("r", pick(), pick()))
			}
			for k := 0; k < rng.Intn(3); k++ {
				d.Insert(relational.F("s", pick(), pick()))
			}
		case 2:
			for k := 0; k < 1+rng.Intn(3); k++ {
				d.Insert(relational.F("p", pick()))
			}
			for k := 0; k < rng.Intn(2); k++ {
				d.Insert(relational.F("q", pick()))
			}
			for k := 0; k < rng.Intn(2); k++ {
				d.Insert(relational.F("t", pick()))
			}
		}
		return d
	}

	trials := 0
	for round := 0; round < 15; round++ {
		for si, set := range sets {
			d := gen(si)
			for _, qsrc := range queries[si] {
				q := parser.MustQuery(qsrc)
				trials++
				base, err := ConsistentAnswers(d, set, q, NewOptions())
				if err != nil {
					t.Fatalf("search engine failed on D=%v, IC set %d, q=%q: %v", d, si, qsrc, err)
				}
				for _, engine := range []Engine{EngineProgram, EngineProgramCautious} {
					opts := NewOptions()
					opts.Engine = engine
					got, err := ConsistentAnswers(d, set, q, opts)
					if err != nil {
						t.Fatalf("%v failed on D=%v, IC set %d, q=%q: %v", engine, d, si, qsrc, err)
					}
					if err := sameAnswer(base, got, q); err != nil {
						t.Fatalf("engines disagree on D=%v, IC set %d, q=%q: %v\nsearch: %+v\n%v: %+v",
							d, si, qsrc, err, base, engine, got)
					}
				}
			}
		}
	}
	if trials < 100 {
		t.Fatalf("only %d differential trials executed", trials)
	}
}

func sameAnswer(a, b Answer, q *query.Q) error {
	if q.IsBoolean() {
		if a.Boolean != b.Boolean {
			return fmt.Errorf("boolean answers differ: %v vs %v", a.Boolean, b.Boolean)
		}
		return nil
	}
	if len(a.Tuples) != len(b.Tuples) {
		return fmt.Errorf("answer counts differ: %d vs %d", len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			return fmt.Errorf("tuple %d differs: %v vs %v", i, a.Tuples[i], b.Tuples[i])
		}
	}
	if a.NumRepairs != b.NumRepairs {
		return fmt.Errorf("repair counts differ: %d vs %d", a.NumRepairs, b.NumRepairs)
	}
	return nil
}

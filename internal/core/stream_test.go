package core

import (
	"fmt"
	"testing"

	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/repair"
	"repro/internal/value"
)

// violatingCourses builds the Example 15 shape with extra dangling courses,
// so the repair space is 2^(extra+1) and a short-circuit is observable.
func violatingCourses(extra int) (*relational.Instance, string) {
	d := parser.MustInstance(`
		course(21, c15).
		course(34, c18).
		student(21, "Ann").
		student(45, "Paul").
	`)
	for i := 0; i < extra; i++ {
		d.Insert(relational.F("course", value.Int(int64(100+i)), value.Str(fmt.Sprintf("cx%d", i))))
	}
	return d, `course(Id, Code) -> student(Id, Name).`
}

// TestBooleanShortCircuit is the regression test for the tentpole's early
// termination: a boolean certain answer that is refuted by one repair must
// stop the enumeration at the first confirmed-minimal counterexample,
// witnessed by a states-explored counter strictly below the full-enumeration
// count.
func TestBooleanShortCircuit(t *testing.T) {
	d, setSrc := violatingCourses(3)
	set := parser.MustConstraints(setSrc)
	full, err := repair.Repairs(d, set, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}

	no := parser.MustQuery(`q :- course(34, c18).`)
	ans, err := ConsistentAnswers(d, set, no, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Boolean {
		t.Fatal("course(34, c18) must not be certain (one repair deletes it)")
	}
	if !ans.ShortCircuited {
		t.Error("refuted boolean answer did not short-circuit")
	}
	if ans.StatesExplored >= full.StatesExplored {
		t.Errorf("short-circuit explored %d states, full enumeration %d — no early termination",
			ans.StatesExplored, full.StatesExplored)
	}

	// A certain yes still requires the full enumeration.
	yes := parser.MustQuery(`q :- course(21, c15).`)
	ans, err = ConsistentAnswers(d, set, yes, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Boolean || ans.ShortCircuited {
		t.Errorf("certain yes answered %+v, want Boolean=true without short-circuit", ans)
	}
	if ans.StatesExplored != full.StatesExplored || ans.NumRepairs != len(full.Repairs) {
		t.Errorf("certain yes explored %d states / %d repairs, want %d / %d",
			ans.StatesExplored, ans.NumRepairs, full.StatesExplored, len(full.Repairs))
	}
}

// TestAnswersParallelMatchesSequential asserts the streamed consistent and
// possible answers are identical for workers=1 and workers=4 across query
// shapes (run under -race in CI, this also exercises concurrent query
// evaluation against the shared frozen base).
func TestAnswersParallelMatchesSequential(t *testing.T) {
	scenarios := []struct {
		db, ic  string
		queries []string
	}{
		{
			db: `r(a, b). r(a, c). s(e, f). s(null, a).`,
			ic: `
				r(X, Y), r(X, Z) -> Y = Z.
				s(U, V) -> r(V, W).
				r(X, Y), isnull(X) -> false.
			`,
			queries: []string{`q(X) :- r(X, Y).`, `q(U) :- s(U, V), r(V, W).`, `q :- r(a, b).`, `q :- r(a, z).`},
		},
		{
			db: `
				course(21, c15). course(34, c18). course(77, c09).
				student(21, "Ann"). student(45, "Paul").
			`,
			ic:      `course(Id, Code) -> student(Id, Name).`,
			queries: []string{`q(Id) :- student(Id, Name).`, `q(Id, Code) :- course(Id, Code).`, `q :- course(34, c18).`},
		},
	}
	for si, sc := range scenarios {
		d := parser.MustInstance(sc.db)
		set := parser.MustConstraints(sc.ic)
		for _, qsrc := range sc.queries {
			q := parser.MustQuery(qsrc)
			seqOpts := NewOptions()
			parOpts := NewOptions()
			parOpts.Repair.Workers = 4
			seq, err := ConsistentAnswers(d, set, q, seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			par, err := ConsistentAnswers(d, set, q, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if err := sameAnswer(seq, par, q); err != nil {
				t.Errorf("scenario %d %q: workers=4 disagrees: %v\nseq: %+v\npar: %+v", si, qsrc, err, seq, par)
			}
			seqPoss, err := PossibleAnswers(d, set, q, seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			parPoss, err := PossibleAnswers(d, set, q, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if len(seqPoss) != len(parPoss) {
				t.Fatalf("scenario %d %q: possible answers differ: %v vs %v", si, qsrc, seqPoss, parPoss)
			}
			for i := range seqPoss {
				if !seqPoss[i].Equal(parPoss[i]) {
					t.Errorf("scenario %d %q: possible answer %d differs: %v vs %v", si, qsrc, i, seqPoss[i], parPoss[i])
				}
			}
		}
	}
}

// TestShortCircuitAgreesWithProgramEngine guards the soundness of the
// certificate: whenever the search engine short-circuits a boolean query,
// the program engine (full stable-model pipeline) must agree the certain
// answer is no.
func TestShortCircuitAgreesWithProgramEngine(t *testing.T) {
	d, setSrc := violatingCourses(2)
	set := parser.MustConstraints(setSrc)
	for _, qsrc := range []string{
		`q :- course(34, c18).`,
		`q :- course(100, cx0).`,
		`q :- course(101, cx1).`,
		`q :- student(34, null).`,
	} {
		q := parser.MustQuery(qsrc)
		search, err := ConsistentAnswers(d, set, q, NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		progOpts := NewOptions()
		progOpts.Engine = EngineProgram
		prog, err := ConsistentAnswers(d, set, q, progOpts)
		if err != nil {
			t.Fatal(err)
		}
		if search.Boolean != prog.Boolean {
			t.Errorf("%q: search says %v (short-circuit=%v), program says %v",
				qsrc, search.Boolean, search.ShortCircuited, prog.Boolean)
		}
	}
}

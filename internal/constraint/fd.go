package constraint

import (
	"fmt"
	"sort"

	"repro/internal/term"
)

// FuncDep is a functional dependency R: K → A recognized inside an IC of the
// two-atom check-constraint shape
//
//	R(x̄, y, w̄), R(x̄, y′, w̄′) → y = y′
//
// where the key positions x̄ repeat the same variable across both atoms, the
// dependent position carries two distinct variables equated by the single
// builtin, and every remaining position holds a variable occurring nowhere
// else. This is the constraint class the repair-less direct engine
// (internal/direct) handles: under the paper's null-aware semantics a tuple
// with null in a key or dependent position is exempt (those positions are
// exactly the relevant attributes A(ψ) of Definition 2), and conflicts are
// confined to key groups, which is what makes repair enumeration avoidable.
type FuncDep struct {
	// IC is the originating constraint.
	IC *IC
	// Pred and Arity identify the constrained relation.
	Pred  string
	Arity int
	// KeyPos are the 0-based left-hand-side positions, ascending. May be
	// empty: an FD with an empty key constrains the whole relation to a
	// single dependent value.
	KeyPos []int
	// DepPos is the 0-based dependent (right-hand-side) position.
	DepPos int
}

func (fd FuncDep) String() string {
	return fmt.Sprintf("%s: %v -> %d", fd.Pred, fd.KeyPos, fd.DepPos)
}

// AsFD recognizes the FD shape. It is purely syntactic: ok is false for any
// constraint not of the exact two-atom single-equality form, even if it is
// semantically equivalent to an FD.
func (ic *IC) AsFD() (FuncDep, bool) {
	if len(ic.Body) != 2 || len(ic.Head) != 0 || len(ic.Phi) != 1 {
		return FuncDep{}, false
	}
	a, b := ic.Body[0], ic.Body[1]
	if a.Pred != b.Pred || a.Arity() != b.Arity() {
		return FuncDep{}, false
	}
	phi := ic.Phi[0]
	if phi.Op != term.EQ || phi.Offset != 0 || !phi.L.IsVar() || !phi.R.IsVar() || phi.L.Var == phi.R.Var {
		return FuncDep{}, false
	}
	// Every argument must be a variable, distinct within its atom.
	count := map[string]int{}
	seenA := map[string]bool{}
	seenB := map[string]bool{}
	for i := 0; i < a.Arity(); i++ {
		ta, tb := a.Args[i], b.Args[i]
		if !ta.IsVar() || !tb.IsVar() {
			return FuncDep{}, false
		}
		if seenA[ta.Var] || seenB[tb.Var] {
			return FuncDep{}, false
		}
		seenA[ta.Var] = true
		seenB[tb.Var] = true
		count[ta.Var]++
		count[tb.Var]++
	}
	fd := FuncDep{IC: ic, Pred: a.Pred, Arity: a.Arity(), DepPos: -1}
	for i := 0; i < a.Arity(); i++ {
		va, vb := a.Args[i].Var, b.Args[i].Var
		switch {
		case va == vb:
			// Key position: same variable joined across both atoms. It must
			// occur nowhere else (in particular not in ϕ).
			if count[va] != 2 {
				return FuncDep{}, false
			}
			fd.KeyPos = append(fd.KeyPos, i)
		case (va == phi.L.Var && vb == phi.R.Var) || (va == phi.R.Var && vb == phi.L.Var):
			// Dependent position: the two variables the equality links.
			if fd.DepPos >= 0 || count[va] != 1 || count[vb] != 1 {
				return FuncDep{}, false
			}
			fd.DepPos = i
		default:
			// Payload position: both variables must be fresh (occur exactly
			// once in the whole constraint) and distinct from ϕ's variables.
			if count[va] != 1 || count[vb] != 1 ||
				va == phi.L.Var || va == phi.R.Var || vb == phi.L.Var || vb == phi.R.Var {
				return FuncDep{}, false
			}
		}
	}
	if fd.DepPos < 0 {
		return FuncDep{}, false
	}
	sort.Ints(fd.KeyPos)
	return fd, true
}

// Analysis is the constraint-class summary the engine router consumes: a set
// is FDOnly iff it contains no NOT NULL-constraints, every IC is an FD
// (AsFD), and no relation carries more than one FD. Under those conditions
// the repair lattice factorizes per key group and the direct engine's
// polynomial classification is exact; any other set must go through the
// repair engines.
type Analysis struct {
	// FDOnly reports whether the whole set is in the direct engine's scope.
	FDOnly bool
	// FDs holds the recognized dependencies, one per relation, in IC order.
	// Populated only when FDOnly.
	FDs []FuncDep
	// Reason names the first disqualifier when !FDOnly, for diagnostics.
	Reason string
}

// Analyze classifies the set for engine routing.
func Analyze(s *Set) Analysis {
	if len(s.NNCs) > 0 {
		return Analysis{Reason: fmt.Sprintf("NOT NULL-constraint %s (NNCs need repair semantics)", s.NNCs[0].Name)}
	}
	byRel := map[PredSig]string{}
	var fds []FuncDep
	for _, ic := range s.ICs {
		fd, ok := ic.AsFD()
		if !ok {
			return Analysis{Reason: fmt.Sprintf("constraint %s is %s, not a functional dependency", ic.Name, ic.Classify())}
		}
		sig := PredSig{Name: fd.Pred, Arity: fd.Arity}
		if prev, dup := byRel[sig]; dup {
			return Analysis{Reason: fmt.Sprintf("relation %s carries two FDs (%s, %s); direct scope is one FD per relation", sig, prev, ic.Name)}
		}
		byRel[sig] = ic.Name
		fds = append(fds, fd)
	}
	return Analysis{FDOnly: true, FDs: fds}
}

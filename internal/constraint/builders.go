package constraint

import (
	"fmt"

	"repro/internal/term"
)

// This file provides builders for the constraint shapes Section 2 mentions
// as special cases of form (1): functional dependencies, primary keys,
// foreign keys, inclusion dependencies, and denial/check constraints. Each
// builder returns constraints already in form (1), so the rest of the
// library needs no special cases.

// varNames uses upper-case prefixes so built constraints render as
// parser-valid source (lower-case identifiers would reparse as constants).
func varNames(prefix string, n int) []term.T {
	out := make([]term.T, n)
	for i := range out {
		out[i] = term.V(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}

// FD builds the functional dependency key -> det on relation pred/arity:
// one constraint of form (1) per determined attribute, each with a single
// equality in the consequent, as the paper prescribes. Positions are
// 0-based.
func FD(pred string, arity int, key []int, det []int) []*IC {
	keySet := map[int]bool{}
	for _, k := range key {
		keySet[k] = true
	}
	var out []*IC
	for _, d := range det {
		if keySet[d] {
			continue
		}
		left := varNames("X", arity)
		right := make([]term.T, arity)
		for i := range right {
			if keySet[i] {
				right[i] = left[i]
			} else {
				right[i] = term.V(fmt.Sprintf("Y%d", i+1))
			}
		}
		out = append(out, &IC{
			Name: fmt.Sprintf("fd_%s_%d", pred, d+1),
			Body: []term.Atom{
				{Pred: pred, Args: left},
				{Pred: pred, Args: right},
			},
			Phi: []term.Builtin{{Op: term.EQ, L: left[d], R: right[d]}},
		})
	}
	return out
}

// PrimaryKey builds the constraints of a primary key on positions key of
// pred/arity: the FD key -> (all other attributes) plus one NNC per key
// attribute (keys may not be null). This is the combination Example 19 uses.
func PrimaryKey(pred string, arity int, key ...int) ([]*IC, []*NNC) {
	var det []int
	keySet := map[int]bool{}
	for _, k := range key {
		keySet[k] = true
	}
	for i := 0; i < arity; i++ {
		if !keySet[i] {
			det = append(det, i)
		}
	}
	ics := FD(pred, arity, key, det)
	nncs := make([]*NNC, 0, len(key))
	for _, k := range key {
		nncs = append(nncs, &NNC{
			Name:  fmt.Sprintf("pk_notnull_%s_%d", pred, k+1),
			Pred:  pred,
			Arity: arity,
			Pos:   k,
		})
	}
	return ics, nncs
}

// ForeignKey builds the RIC stating that positions fromPos of from/fromArity
// reference positions toPos of to/toArity:
//
//	from(x̄) → ∃ȳ to(..., x̄′, ...)
//
// with existential variables everywhere outside toPos. This is a partial
// inclusion dependency; combined with a PrimaryKey on the target it is a
// foreign key constraint in the SQL sense.
func ForeignKey(from string, fromArity int, fromPos []int, to string, toArity int, toPos []int) *IC {
	if len(fromPos) != len(toPos) {
		panic("constraint: ForeignKey position lists differ in length")
	}
	body := varNames("X", fromArity)
	head := make([]term.T, toArity)
	for i := range head {
		head[i] = term.V(fmt.Sprintf("Z%d", i+1))
	}
	for i, fp := range fromPos {
		head[toPos[i]] = body[fp]
	}
	return &IC{
		Name: fmt.Sprintf("fk_%s_%s", from, to),
		Body: []term.Atom{{Pred: from, Args: body}},
		Head: []term.Atom{{Pred: to, Args: head}},
	}
}

// FullInclusion builds the universal constraint that positions fromPos of
// from are included in positions toPos of to where to's remaining positions
// are also determined by shared variables — i.e. a full inclusion dependency
// (a UIC, per Section 2). All of to's positions must be listed in toPos.
func FullInclusion(from string, fromArity int, fromPos []int, to string, toPos []int) *IC {
	if len(fromPos) != len(toPos) {
		panic("constraint: FullInclusion position lists differ in length")
	}
	body := varNames("X", fromArity)
	head := make([]term.T, len(toPos))
	for i, fp := range fromPos {
		head[toPos[i]] = body[fp]
	}
	for i, t := range head {
		if t.Var == "" && t.Const.IsNull() {
			panic(fmt.Sprintf("constraint: FullInclusion leaves position %d of %s undetermined", i+1, to))
		}
	}
	return &IC{
		Name: fmt.Sprintf("incl_%s_%s", from, to),
		Body: []term.Atom{{Pred: from, Args: body}},
		Head: []term.Atom{{Pred: to, Args: head}},
	}
}

// Denial builds the denial constraint ∀x̄(⋀ body → false).
func Denial(name string, body ...term.Atom) *IC {
	return &IC{Name: name, Body: body}
}

// Check builds a check constraint: ∀x̄(⋀ body → ϕ) with ϕ a disjunction of
// builtins (Example 6's single-row checks use one body atom).
func Check(name string, body []term.Atom, phi ...term.Builtin) *IC {
	return &IC{Name: name, Body: body, Phi: phi}
}

package constraint

import (
	"fmt"

	"repro/internal/term"
)

// Standardize renames existential variables so that distinct head atoms use
// disjoint existential variable sets, as form (1) requires (z̄ᵢ ∩ z̄ⱼ = ∅ for
// i ≠ j). Since the existential quantifier distributes over the disjunction,
// the renaming preserves the constraint's meaning; the paper notes that "a
// wide class of ICs can be accommodated in this general syntactic class by
// appropriate renaming of variables if necessary" (Example 1(c) is written
// with a shared existential variable). Repetitions of an existential
// variable within a single head atom are kept (Example 13 relies on them).
func (ic *IC) Standardize() {
	body := map[string]bool{}
	for _, v := range ic.BodyVars() {
		body[v] = true
	}
	used := map[string]bool{}
	for v := range body {
		used[v] = true
	}
	for _, a := range ic.Head {
		for _, t := range a.Args {
			if t.IsVar() {
				used[t.Var] = true
			}
		}
	}
	seenInEarlierAtom := map[string]bool{}
	for j := range ic.Head {
		rename := map[string]string{}
		atom := ic.Head[j].Clone()
		for i, t := range atom.Args {
			if !t.IsVar() || body[t.Var] {
				continue
			}
			if !seenInEarlierAtom[t.Var] {
				continue // first atom to use it keeps the name
			}
			fresh, ok := rename[t.Var]
			if !ok {
				fresh = freshVar(t.Var, used)
				used[fresh] = true
				rename[t.Var] = fresh
			}
			atom.Args[i] = term.V(fresh)
		}
		ic.Head[j] = atom
		for _, t := range atom.Args {
			if t.IsVar() && !body[t.Var] {
				seenInEarlierAtom[t.Var] = true
			}
		}
	}
}

func freshVar(base string, used map[string]bool) string {
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_%d", base, i)
		if !used[cand] {
			return cand
		}
	}
}

package constraint

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/term"
)

func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }
func v(name string) term.T                       { return term.V(name) }

// Example 1(a): ∀xyzw(P(x,y) ∧ R(y,z,w) → S(x) ∨ z ≠ 2 ∨ w ≤ y).
func example1a() *IC {
	return &IC{
		Name: "ex1a",
		Body: []term.Atom{atom("P", v("x"), v("y")), atom("R", v("y"), v("z"), v("w"))},
		Head: []term.Atom{atom("S", v("x"))},
		Phi: []term.Builtin{
			{Op: term.NEQ, L: v("z"), R: term.CInt(2)},
			{Op: term.LEQ, L: v("w"), R: v("y")},
		},
	}
}

// Example 1(b): ∀xy(P(x,y) → ∃z R(x,y,z)).
func example1b() *IC {
	return &IC{
		Name: "ex1b",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("R", v("x"), v("y"), v("z"))},
	}
}

func TestClassifyExample1(t *testing.T) {
	if got := example1a().Classify(); got != ClassUIC {
		t.Errorf("ex1a class = %v, want universal", got)
	}
	if got := example1b().Classify(); got != ClassRIC {
		t.Errorf("ex1b class = %v, want referential", got)
	}
	// Example 1(c): S(x) → ∃yz(R(x,y) ∨ R(x,y,z)) — after standardization,
	// a general constraint (two head atoms with existentials).
	c := &IC{
		Name: "ex1c",
		Body: []term.Atom{atom("S", v("x"))},
		Head: []term.Atom{atom("R", v("x"), v("y")), atom("R", v("x"), v("y"), v("z"))},
	}
	c.Standardize()
	if err := c.Validate(); err != nil {
		t.Fatalf("standardized ex1c invalid: %v", err)
	}
	if got := c.Classify(); got != ClassGeneral {
		t.Errorf("ex1c class = %v, want general", got)
	}
}

func TestStandardizeRenamesSharedExistentials(t *testing.T) {
	c := &IC{
		Body: []term.Atom{atom("S", v("x"))},
		Head: []term.Atom{atom("R", v("x"), v("y")), atom("R", v("x"), v("y"), v("z"))},
	}
	if err := c.Validate(); err == nil {
		t.Fatal("shared existential variable must fail validation before standardization")
	}
	c.Standardize()
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate after Standardize: %v", err)
	}
	// First head atom keeps y; second must have a fresh variable.
	if c.Head[0].Args[1].Var != "y" {
		t.Errorf("first atom renamed: %v", c.Head[0])
	}
	if c.Head[1].Args[1].Var == "y" {
		t.Errorf("second atom not renamed: %v", c.Head[1])
	}
	// Repetition within one atom must survive standardization (Example 13).
	rep := &IC{
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"), v("z"))},
	}
	rep.Standardize()
	if rep.Head[0].Args[1].Var != rep.Head[0].Args[2].Var {
		t.Errorf("within-atom repetition broken: %v", rep.Head[0])
	}
}

func TestBodyAndExistVars(t *testing.T) {
	c := example1b()
	if got := c.BodyVars(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("BodyVars = %v", got)
	}
	if got := c.ExistVars(); !reflect.DeepEqual(got, []string{"z"}) {
		t.Errorf("ExistVars = %v", got)
	}
	if got := example1a().ExistVars(); len(got) != 0 {
		t.Errorf("UIC ExistVars = %v", got)
	}
}

func TestDenialAndCheck(t *testing.T) {
	d := Denial("d", atom("P", v("x")), atom("Q", v("x")))
	if !d.IsDenial() || d.IsCheck() || d.Classify() != ClassUIC {
		t.Errorf("denial misclassified: %v %v %v", d.IsDenial(), d.IsCheck(), d.Classify())
	}
	// Example 6: Emp(ID,Name,Salary) → Salary > 100.
	chk := Check("salary",
		[]term.Atom{atom("Emp", v("id"), v("name"), v("salary"))},
		term.Builtin{Op: term.GT, L: v("salary"), R: term.CInt(100)})
	if !chk.IsCheck() || chk.IsDenial() {
		t.Error("check constraint misclassified")
	}
	if got := chk.RelevantAttrs().String(); got != "{Emp[3]}" {
		t.Errorf("check relevant attrs = %s", got)
	}
}

func TestRelevantAttrsExample4(t *testing.T) {
	// ψ1: P(x,y,z) → R(y,z): A = {P[2],P[3],R[1],R[2]}.
	psi1 := &IC{
		Body: []term.Atom{atom("P", v("x"), v("y"), v("z"))},
		Head: []term.Atom{atom("R", v("y"), v("z"))},
	}
	if got := psi1.RelevantAttrs().String(); got != "{P[2], P[3], R[1], R[2]}" {
		t.Errorf("A(ψ1) = %s", got)
	}
	// ψ2: P(x,y,z) → R(x,y): A = {P[1],P[2],R[1],R[2]}.
	psi2 := &IC{
		Body: []term.Atom{atom("P", v("x"), v("y"), v("z"))},
		Head: []term.Atom{atom("R", v("x"), v("y"))},
	}
	if got := psi2.RelevantAttrs().String(); got != "{P[1], P[2], R[1], R[2]}" {
		t.Errorf("A(ψ2) = %s", got)
	}
}

func TestRelevantAttrsExample8(t *testing.T) {
	// Person(x,y,z,w) ∧ Person(z,s,t,u) → u > w+15 simplified to u > w
	// (still: relevant = Name, Mom, Age = Person[1],[3],[4]).
	c := &IC{
		Body: []term.Atom{
			atom("Person", v("x"), v("y"), v("z"), v("w")),
			atom("Person", v("z"), v("s"), v("t"), v("u")),
		},
		Phi: []term.Builtin{{Op: term.GT, L: v("u"), R: v("w")}},
	}
	if got := c.RelevantAttrs().String(); got != "{Person[1], Person[3], Person[4]}" {
		t.Errorf("A(ψ) = %s", got)
	}
}

func TestRelevantAttrsExample10(t *testing.T) {
	// γ: P(x,y,z) ∧ R(z,w) → ∃v R(x,v) ∨ w > 3.
	// A(γ) = {P[1], P[3], R[1], R[2]}.
	g := &IC{
		Body: []term.Atom{atom("P", v("x"), v("y"), v("z")), atom("R", v("z"), v("w"))},
		Head: []term.Atom{atom("R", v("x"), v("v"))},
		Phi:  []term.Builtin{{Op: term.GT, L: v("w"), R: term.CInt(3)}},
	}
	if got := g.RelevantAttrs().String(); got != "{P[1], P[3], R[1], R[2]}" {
		t.Errorf("A(γ) = %s", got)
	}
}

func TestRelevantAttrsExample12(t *testing.T) {
	// ψ: P1(x,y,w) ∧ P2(y,z) → ∃u Q(x,z,u).
	c := &IC{
		Body: []term.Atom{atom("P1", v("x"), v("y"), v("w")), atom("P2", v("y"), v("z"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"), v("u"))},
	}
	if got := c.RelevantAttrs().String(); got != "{P1[1], P1[2], P2[1], P2[2], Q[1], Q[2]}" {
		t.Errorf("A(ψ) = %s", got)
	}
	vars := c.RelevantBodyVars()
	if !reflect.DeepEqual(vars, []string{"x", "y", "z"}) {
		t.Errorf("relevant body vars = %v", vars)
	}
}

func TestRelevantAttrsExample13(t *testing.T) {
	// ψ: P(x,y) → ∃z Q(x,z,z): A = {P[1], Q[1], Q[2], Q[3]}.
	c := &IC{
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"), v("z"))},
	}
	if got := c.RelevantAttrs().String(); got != "{P[1], Q[1], Q[2], Q[3]}" {
		t.Errorf("A(ψ) = %s", got)
	}
}

func TestRelevantAttrsConstants(t *testing.T) {
	// Constants are always relevant (Definition 2, second clause).
	c := &IC{
		Body: []term.Atom{atom("P", v("x"), term.CStr("a"))},
		Head: []term.Atom{atom("P", v("x"), term.CStr("b"))},
	}
	if got := c.RelevantAttrs().String(); got != "{P[1], P[2]}" {
		t.Errorf("A = %s", got)
	}
}

func TestRICParts(t *testing.T) {
	c := example1b() // P(x,y) → ∃z R(x,y,z)
	p, ok := c.RICParts()
	if !ok {
		t.Fatal("RICParts failed on a RIC")
	}
	if !reflect.DeepEqual(p.SharedPos, []int{0, 1}) || !reflect.DeepEqual(p.ExistPos, []int{2}) {
		t.Errorf("parts = %+v", p)
	}
	if _, ok := example1a().RICParts(); ok {
		t.Error("RICParts succeeded on a UIC")
	}
	// Existential variable in first position (Example 18's RIC
	// T(x) → ∃y P(y,x)).
	c2 := &IC{
		Body: []term.Atom{atom("T", v("x"))},
		Head: []term.Atom{atom("P", v("y"), v("x"))},
	}
	p2, _ := c2.RICParts()
	if !reflect.DeepEqual(p2.SharedPos, []int{1}) || !reflect.DeepEqual(p2.ExistPos, []int{0}) {
		t.Errorf("parts = %+v", p2)
	}
}

func TestValidateRejectsBadConstraints(t *testing.T) {
	bad := []*IC{
		{Name: "emptybody", Head: []term.Atom{atom("P", v("x"))}},
		{Name: "nullinbody", Body: []term.Atom{atom("P", term.CNull())}},
		{Name: "nullinhead", Body: []term.Atom{atom("P", v("x"))}, Head: []term.Atom{atom("Q", term.CNull())}},
		{Name: "phivar", Body: []term.Atom{atom("P", v("x"))}, Phi: []term.Builtin{{Op: term.GT, L: v("w"), R: term.CInt(0)}}},
		{Name: "nullphi", Body: []term.Atom{atom("P", v("x"))}, Phi: []term.Builtin{{Op: term.EQ, L: v("x"), R: term.CNull()}}},
	}
	for _, ic := range bad {
		if err := ic.Validate(); err == nil {
			t.Errorf("constraint %q unexpectedly valid", ic.Name)
		}
	}
	if err := example1a().Validate(); err != nil {
		t.Errorf("ex1a invalid: %v", err)
	}
}

func TestNewSetNamesAndValidates(t *testing.T) {
	s, err := NewSet([]*IC{example1a(), {Body: []term.Atom{atom("P", v("x"))}}}, []*NNC{{Pred: "P", Arity: 2, Pos: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.ICs[1].Name != "ic2" || s.NNCs[0].Name != "nnc1" {
		t.Errorf("auto-naming failed: %q %q", s.ICs[1].Name, s.NNCs[0].Name)
	}
	if _, err := NewSet(nil, []*NNC{{Pred: "P", Arity: 2, Pos: 5}}); err == nil {
		t.Error("out-of-range NNC accepted")
	}
}

func TestConflictsExample20(t *testing.T) {
	// RIC P(x) → ∃y Q(x,y) with NNC on Q[2] is conflicting.
	ric := &IC{
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), v("y"))},
	}
	nnc := &NNC{Pred: "Q", Arity: 2, Pos: 1}
	s := MustSet([]*IC{ric}, []*NNC{nnc})
	if s.NonConflicting() {
		t.Fatal("Example 20 set reported non-conflicting")
	}
	cs := s.Conflicts()
	if len(cs) != 1 || cs[0].Pred != "Q" || cs[0].Pos != 1 {
		t.Errorf("Conflicts = %v", cs)
	}
	if !strings.Contains(cs[0].String(), "Q[2]") {
		t.Errorf("Conflict.String = %q", cs[0].String())
	}

	// NNC on the key position (Example 19) is non-conflicting.
	s2 := MustSet([]*IC{ric}, []*NNC{{Pred: "Q", Arity: 2, Pos: 0}})
	if !s2.NonConflicting() {
		t.Error("NNC on shared position reported conflicting")
	}
}

func TestFDBuilder(t *testing.T) {
	// Example 19: R(x,y), R(x,z) → y = z.
	ics := FD("R", 2, []int{0}, []int{1})
	if len(ics) != 1 {
		t.Fatalf("FD returned %d constraints", len(ics))
	}
	ic := ics[0]
	if err := ic.Validate(); err != nil {
		t.Fatal(err)
	}
	if ic.Classify() != ClassUIC || !ic.IsCheck() {
		t.Errorf("FD shape wrong: %v", ic)
	}
	if len(ic.Body) != 2 || len(ic.Phi) != 1 || ic.Phi[0].Op != term.EQ {
		t.Errorf("FD structure: %v", ic)
	}
	// A functional dependency key->key is vacuous.
	if got := FD("R", 2, []int{0}, []int{0}); len(got) != 0 {
		t.Errorf("vacuous FD returned %v", got)
	}
}

func TestPrimaryKeyBuilder(t *testing.T) {
	ics, nncs := PrimaryKey("R", 2, 0)
	if len(ics) != 1 || len(nncs) != 1 {
		t.Fatalf("PrimaryKey = %d ICs, %d NNCs", len(ics), len(nncs))
	}
	if nncs[0].Pred != "R" || nncs[0].Pos != 0 {
		t.Errorf("NNC = %+v", nncs[0])
	}
	// Composite key of Example 5: Exp has {ID, Code} as key (arity 3).
	ics2, nncs2 := PrimaryKey("Exp", 3, 0, 1)
	if len(ics2) != 1 || len(nncs2) != 2 {
		t.Fatalf("composite PrimaryKey = %d ICs, %d NNCs", len(ics2), len(nncs2))
	}
}

func TestForeignKeyBuilder(t *testing.T) {
	// Example 19: S(u,v) with S[2] referencing R[1]: S(u,v) → ∃y R(v,y).
	fk := ForeignKey("S", 2, []int{1}, "R", 2, []int{0})
	if err := fk.Validate(); err != nil {
		t.Fatal(err)
	}
	if fk.Classify() != ClassRIC {
		t.Errorf("FK class = %v", fk.Classify())
	}
	p, _ := fk.RICParts()
	if !reflect.DeepEqual(p.SharedPos, []int{0}) || !reflect.DeepEqual(p.ExistPos, []int{1}) {
		t.Errorf("FK parts = %+v", p)
	}
	// Example 5: Course(Code,ID,Term) → ∃w Exp(ID,Code,w).
	fk2 := ForeignKey("Course", 3, []int{1, 0}, "Exp", 3, []int{0, 1})
	if got := fk2.RelevantAttrs().String(); got != "{Course[1], Course[2], Exp[1], Exp[2]}" {
		t.Errorf("A(fk2) = %s", got)
	}
}

func TestFullInclusionBuilder(t *testing.T) {
	// Example 9: Course(x,y,z) → Employee(y,z) — a UIC.
	ic := FullInclusion("Course", 3, []int{1, 2}, "Employee", []int{0, 1})
	if err := ic.Validate(); err != nil {
		t.Fatal(err)
	}
	if ic.Classify() != ClassUIC {
		t.Errorf("class = %v", ic.Classify())
	}
	if got := ic.RelevantAttrs().String(); got != "{Course[2], Course[3], Employee[1], Employee[2]}" {
		t.Errorf("A = %s", got)
	}
}

func TestSetAccessorsAndConstants(t *testing.T) {
	s := MustSet([]*IC{example1a(), example1b()}, nil)
	if len(s.UICs()) != 1 || len(s.RICs()) != 1 {
		t.Errorf("UICs/RICs = %d/%d", len(s.UICs()), len(s.RICs()))
	}
	consts := s.Constants()
	if len(consts) != 1 || consts[0].String() != "2" {
		t.Errorf("Constants = %v", consts)
	}
	preds := s.Preds()
	var names []string
	for _, p := range preds {
		names = append(names, p.String())
	}
	if !reflect.DeepEqual(names, []string{"P/2", "R/3", "S/1"}) {
		t.Errorf("Preds = %v", names)
	}
}

func TestICString(t *testing.T) {
	if got := example1b().String(); got != "P(x,y) -> exists z: R(x,y,z)" {
		t.Errorf("String = %q", got)
	}
	d := Denial("d", atom("P", v("x")))
	if got := d.String(); got != "P(x) -> false" {
		t.Errorf("denial String = %q", got)
	}
	if got := example1a().String(); got != "P(x,y), R(y,z,w) -> S(x) | z != 2 | w <= y" {
		t.Errorf("String = %q", got)
	}
	n := &NNC{Pred: "R", Arity: 2, Pos: 0}
	if got := n.String(); got != "R(x1,x2), isnull(x1) -> false" {
		t.Errorf("NNC String = %q", got)
	}
}

func TestAttrSetContains(t *testing.T) {
	s := AttrSet{"P": {0, 2}}
	if !s.Contains("P", 0) || !s.Contains("P", 2) || s.Contains("P", 1) || s.Contains("Q", 0) {
		t.Error("Contains broken")
	}
}

// Package constraint implements the integrity-constraint language of
// Section 2 of the paper: constraints of the general form (1)
//
//	∀x̄ ( ⋀ᵢ Pᵢ(x̄ᵢ)  →  ∃z̄ ( ⋁ⱼ Qⱼ(ȳⱼ, z̄ⱼ) ∨ ϕ ) )
//
// together with the special classes the paper distinguishes: universal
// constraints (UICs, form (2)), referential constraints (RICs, form (3)),
// denial and check constraints, and NOT NULL-constraints (NNCs, form (5)).
// It also computes the relevant attributes A(ψ) of Definition 2, the
// syntactic core of the paper's null-aware satisfaction semantics.
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/term"
)

// IC is an integrity constraint of form (1). The universal prefix is
// implicit: every variable in Body is universally quantified, and every
// variable that occurs in Head but not in Body is existentially quantified
// (z̄). Phi is a disjunction of builtin atoms whose variables must occur in
// the Body.
type IC struct {
	// Name optionally identifies the constraint in diagnostics and
	// generated programs. Generated names are assigned by Set if empty.
	Name string
	// Body is the antecedent ⋀ Pᵢ(x̄ᵢ), m ≥ 1.
	Body []term.Atom
	// Head is the disjunction ⋁ Qⱼ(ȳⱼ, z̄ⱼ); may be empty (denial).
	Head []term.Atom
	// Phi is the disjunction of builtin atoms; may be empty. A constraint
	// with empty Head and empty Phi is a denial constraint (consequent
	// "false").
	Phi []term.Builtin
}

// NNC is a NOT NULL-constraint of form (5):
//
//	∀x̄ ( P(x̄) ∧ IsNull(x_i) → false )
//
// prohibiting null in attribute position Pos (0-based) of predicate Pred.
// NNCs are kept separate from ICs because they mention the constant null,
// which form (1) forbids (see the remark after Definition 5).
type NNC struct {
	Name  string
	Pred  string
	Arity int
	Pos   int
}

func (n *NNC) String() string {
	vars := make([]string, n.Arity)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	return fmt.Sprintf("%s(%s), isnull(%s) -> false",
		n.Pred, strings.Join(vars, ","), vars[n.Pos])
}

// Class is the syntactic class of an IC.
type Class uint8

// The constraint classes of Section 2.
const (
	// ClassUIC is a universal constraint (form (2)): no existential
	// variables.
	ClassUIC Class = iota
	// ClassRIC is a referential constraint (form (3)): one body atom, one
	// head atom, no ϕ, and at least one existential variable.
	ClassRIC
	// ClassGeneral is any other constraint of form (1) (existential
	// quantifiers with multiple body or head atoms, or with ϕ).
	ClassGeneral
)

func (c Class) String() string {
	switch c {
	case ClassUIC:
		return "universal"
	case ClassRIC:
		return "referential"
	default:
		return "general"
	}
}

// BodyVars returns the universally quantified variables x̄ in order of first
// occurrence.
func (ic *IC) BodyVars() []string {
	var raw []string
	for _, a := range ic.Body {
		raw = a.Vars(raw)
	}
	return dedup(raw)
}

// ExistVars returns the existential variables z̄ (head variables that do not
// occur in the body), in order of first occurrence.
func (ic *IC) ExistVars() []string {
	body := map[string]bool{}
	for _, v := range ic.BodyVars() {
		body[v] = true
	}
	var raw []string
	for _, a := range ic.Head {
		for _, t := range a.Args {
			if t.IsVar() && !body[t.Var] {
				raw = append(raw, t.Var)
			}
		}
	}
	return dedup(raw)
}

func dedup(raw []string) []string {
	seen := map[string]bool{}
	out := raw[:0]
	for _, v := range raw {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Classify determines the syntactic class of the constraint.
func (ic *IC) Classify() Class {
	if len(ic.ExistVars()) == 0 {
		return ClassUIC
	}
	if len(ic.Body) == 1 && len(ic.Head) == 1 && len(ic.Phi) == 0 {
		return ClassRIC
	}
	return ClassGeneral
}

// IsDenial reports whether the constraint is a denial constraint
// ∀x̄(⋀ Pᵢ(x̄ᵢ) → false), i.e. has an empty consequent.
func (ic *IC) IsDenial() bool { return len(ic.Head) == 0 && len(ic.Phi) == 0 }

// IsCheck reports whether the constraint is a check constraint: no head
// atoms, only builtins in the consequent.
func (ic *IC) IsCheck() bool { return len(ic.Head) == 0 && len(ic.Phi) > 0 }

// Validate checks the standardization conditions of form (1):
//   - m ≥ 1 (non-empty body);
//   - no constant null anywhere (null may not appear in constraints; NNCs
//     exist for that purpose);
//   - head atoms use only body variables, existential variables, or
//     constants;
//   - existential variable sets of distinct head atoms are disjoint
//     (z̄ᵢ ∩ z̄ⱼ = ∅ for i ≠ j);
//   - ϕ's variables all occur in the body.
func (ic *IC) Validate() error {
	if len(ic.Body) == 0 {
		return fmt.Errorf("constraint %s: empty antecedent (m >= 1 required)", ic.Name)
	}
	for _, a := range ic.Body {
		if err := noNull(a); err != nil {
			return fmt.Errorf("constraint %s: %v", ic.Name, err)
		}
	}
	body := map[string]bool{}
	for _, v := range ic.BodyVars() {
		body[v] = true
	}
	seenExist := map[string]int{} // var -> head atom index
	for j, a := range ic.Head {
		if err := noNull(a); err != nil {
			return fmt.Errorf("constraint %s: %v", ic.Name, err)
		}
		for _, t := range a.Args {
			if !t.IsVar() || body[t.Var] {
				continue
			}
			if prev, ok := seenExist[t.Var]; ok && prev != j {
				return fmt.Errorf("constraint %s: existential variable %q shared by head atoms %d and %d",
					ic.Name, t.Var, prev+1, j+1)
			}
			seenExist[t.Var] = j
		}
	}
	for _, b := range ic.Phi {
		for _, t := range []term.T{b.L, b.R} {
			if t.IsVar() && !body[t.Var] {
				return fmt.Errorf("constraint %s: builtin variable %q does not occur in the antecedent", ic.Name, t.Var)
			}
			if !t.IsVar() && t.Const.IsNull() {
				return fmt.Errorf("constraint %s: null constant in builtin (use a NOT NULL-constraint)", ic.Name)
			}
		}
	}
	return nil
}

func noNull(a term.Atom) error {
	for _, t := range a.Args {
		if !t.IsVar() && t.Const.IsNull() {
			return fmt.Errorf("atom %s contains the constant null", a)
		}
	}
	return nil
}

// String renders the constraint in the repo's textual constraint syntax,
// e.g. "P(x,y) -> exists z: R(x,y,z)" or "P(x,y) -> S(x) | y > 0".
func (ic *IC) String() string {
	var b strings.Builder
	for i, a := range ic.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(" -> ")
	if exist := ic.ExistVars(); len(exist) > 0 {
		b.WriteString("exists ")
		b.WriteString(strings.Join(exist, ","))
		b.WriteString(": ")
	}
	if ic.IsDenial() {
		b.WriteString("false")
		return b.String()
	}
	first := true
	for _, a := range ic.Head {
		if !first {
			b.WriteString(" | ")
		}
		first = false
		b.WriteString(a.String())
	}
	for _, bi := range ic.Phi {
		if !first {
			b.WriteString(" | ")
		}
		first = false
		b.WriteString(bi.String())
	}
	return b.String()
}

// AttrSet is a set of relevant attribute positions per predicate name:
// pred -> sorted 0-based positions. It realizes A(ψ) of Definition 2 and the
// projection argument of Definition 3.
type AttrSet map[string][]int

// Contains reports whether the set contains position pos of pred.
func (s AttrSet) Contains(pred string, pos int) bool {
	for _, p := range s[pred] {
		if p == pos {
			return true
		}
	}
	return false
}

// String renders the set the way the paper writes it: {P[1], R[2]}
// (1-based).
func (s AttrSet) String() string {
	preds := make([]string, 0, len(s))
	for p := range s {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	var parts []string
	for _, p := range preds {
		for _, pos := range s[p] {
			parts = append(parts, fmt.Sprintf("%s[%d]", p, pos+1))
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// RelevantAttrs computes A(ψ) of Definition 2: the positions R[i] holding a
// variable that occurs at least twice in ψ (anywhere: body, head, or ϕ), or a
// constant. These are exactly the attributes involved in joins, in
// antecedent/consequent transfers, and in ϕ.
func (ic *IC) RelevantAttrs() AttrSet {
	count := map[string]int{}
	var all []string
	for _, a := range ic.Body {
		all = a.Vars(all)
	}
	for _, a := range ic.Head {
		all = a.Vars(all)
	}
	for _, b := range ic.Phi {
		all = b.Vars(all)
	}
	for _, v := range all {
		count[v]++
	}

	set := map[string]map[int]bool{}
	add := func(pred string, pos int) {
		if set[pred] == nil {
			set[pred] = map[int]bool{}
		}
		set[pred][pos] = true
	}
	scan := func(a term.Atom) {
		for i, t := range a.Args {
			if t.IsVar() {
				if count[t.Var] >= 2 {
					add(a.Pred, i)
				}
			} else {
				add(a.Pred, i)
			}
		}
	}
	for _, a := range ic.Body {
		scan(a)
	}
	for _, a := range ic.Head {
		scan(a)
	}

	out := make(AttrSet, len(set))
	for pred, positions := range set {
		ps := make([]int, 0, len(positions))
		for p := range positions {
			ps = append(ps, p)
		}
		sort.Ints(ps)
		out[pred] = ps
	}
	return out
}

// RelevantBodyVars returns the antecedent variables that occupy a relevant
// position, i.e. A(ψ) ∩ x̄ from Definition 4: the variables guarded by
// IsNull disjuncts in ψ_N. The result is sorted.
func (ic *IC) RelevantBodyVars() []string {
	rel := ic.RelevantAttrs()
	seen := map[string]bool{}
	for _, a := range ic.Body {
		for i, t := range a.Args {
			if t.IsVar() && rel.Contains(a.Pred, i) {
				seen[t.Var] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// RICParts decomposes a RIC ∀x̄(P(x̄) → ∃ȳ Q(x̄′, ȳ)) into the pieces the
// repair machinery needs: for the single head atom, which positions carry
// shared (x̄′) terms or constants, and which carry existential variables. It
// reports ok = false if the constraint is not a RIC.
type RICParts struct {
	BodyAtom term.Atom
	HeadAtom term.Atom
	// SharedPos are head positions holding body variables or constants
	// (the x̄′ positions — the relevant positions of Q).
	SharedPos []int
	// ExistPos are head positions holding existential variables.
	ExistPos []int
}

// RICParts decomposes the constraint; ok is false unless ic is a RIC.
func (ic *IC) RICParts() (RICParts, bool) {
	if ic.Classify() != ClassRIC {
		return RICParts{}, false
	}
	body := map[string]bool{}
	for _, v := range ic.BodyVars() {
		body[v] = true
	}
	p := RICParts{BodyAtom: ic.Body[0], HeadAtom: ic.Head[0]}
	for i, t := range ic.Head[0].Args {
		if t.IsVar() && !body[t.Var] {
			p.ExistPos = append(p.ExistPos, i)
		} else {
			p.SharedPos = append(p.SharedPos, i)
		}
	}
	return p, true
}

// Set is a finite set of ICs and NNCs, the paper's IC.
type Set struct {
	ICs  []*IC
	NNCs []*NNC
}

// NewSet builds a validated set, naming anonymous constraints ic1, ic2, ...
// and nnc1, nnc2, ...
func NewSet(ics []*IC, nncs []*NNC) (*Set, error) {
	s := &Set{ICs: ics, NNCs: nncs}
	for i, ic := range ics {
		if ic.Name == "" {
			ic.Name = fmt.Sprintf("ic%d", i+1)
		}
		if err := ic.Validate(); err != nil {
			return nil, err
		}
	}
	for i, n := range nncs {
		if n.Name == "" {
			n.Name = fmt.Sprintf("nnc%d", i+1)
		}
		if n.Pos < 0 || n.Pos >= n.Arity {
			return nil, fmt.Errorf("NNC %s: position %d out of range for arity %d", n.Name, n.Pos, n.Arity)
		}
	}
	return s, nil
}

// MustSet is NewSet, panicking on invalid input. Intended for tests and
// examples with literal constraints.
func MustSet(ics []*IC, nncs []*NNC) *Set {
	s, err := NewSet(ics, nncs)
	if err != nil {
		panic(err)
	}
	return s
}

// UICs returns the universal constraints in the set (IC_U of Definition 1).
func (s *Set) UICs() []*IC {
	var out []*IC
	for _, ic := range s.ICs {
		if ic.Classify() == ClassUIC {
			out = append(out, ic)
		}
	}
	return out
}

// RICs returns the referential constraints in the set.
func (s *Set) RICs() []*IC {
	var out []*IC
	for _, ic := range s.ICs {
		if ic.Classify() == ClassRIC {
			out = append(out, ic)
		}
	}
	return out
}

// Conflicts returns the conflicting (RIC existential attribute, NNC) pairs
// per the assumption in Section 4: a set is non-conflicting iff no NNC
// constrains an attribute that is existentially quantified in some IC of
// form (1). Example 20 shows what happens otherwise.
func (s *Set) Conflicts() []Conflict {
	var out []Conflict
	for _, ic := range s.ICs {
		body := map[string]bool{}
		for _, v := range ic.BodyVars() {
			body[v] = true
		}
		for _, a := range ic.Head {
			for i, t := range a.Args {
				if !t.IsVar() || body[t.Var] {
					continue
				}
				for _, n := range s.NNCs {
					if n.Pred == a.Pred && n.Arity == len(a.Args) && n.Pos == i {
						out = append(out, Conflict{IC: ic, NNC: n, Pred: a.Pred, Pos: i})
					}
				}
			}
		}
	}
	return out
}

// NonConflicting reports whether the set satisfies the standing assumption
// of Section 4.
func (s *Set) NonConflicting() bool { return len(s.Conflicts()) == 0 }

// Conflict is a violation of the non-conflicting assumption.
type Conflict struct {
	IC   *IC
	NNC  *NNC
	Pred string
	Pos  int
}

func (c Conflict) String() string {
	return fmt.Sprintf("NNC %s forbids null in %s[%d], which is existentially quantified in %s",
		c.NNC.Name, c.Pred, c.Pos+1, c.IC.Name)
}

// Constants returns const(IC): the sorted set of constants appearing in the
// constraints (Proposition 1 restricts repair domains to
// adom(D) ∪ const(IC) ∪ {null}).
func (s *Set) Constants() []term.T {
	seen := map[string]term.T{}
	scan := func(t term.T) {
		if !t.IsVar() {
			seen[t.Const.Key()] = t
		}
	}
	for _, ic := range s.ICs {
		for _, a := range ic.Body {
			for _, t := range a.Args {
				scan(t)
			}
		}
		for _, a := range ic.Head {
			for _, t := range a.Args {
				scan(t)
			}
		}
		for _, b := range ic.Phi {
			scan(b.L)
			scan(b.R)
		}
	}
	out := make([]term.T, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Const.Compare(out[j].Const) < 0 })
	return out
}

// Preds returns the sorted predicate names mentioned by the set (with their
// arities), used to build dependency graphs and repair programs.
func (s *Set) Preds() []PredSig {
	seen := map[string]int{}
	add := func(name string, arity int) { seen[fmt.Sprintf("%s/%d", name, arity)] = arity }
	for _, ic := range s.ICs {
		for _, a := range ic.Body {
			add(a.Pred, a.Arity())
		}
		for _, a := range ic.Head {
			add(a.Pred, a.Arity())
		}
	}
	for _, n := range s.NNCs {
		add(n.Pred, n.Arity)
	}
	out := make([]PredSig, 0, len(seen))
	for key, arity := range seen {
		name := key[:strings.LastIndexByte(key, '/')]
		out = append(out, PredSig{Name: name, Arity: arity})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// PredSig identifies a predicate by name and arity.
type PredSig struct {
	Name  string
	Arity int
}

func (p PredSig) String() string { return fmt.Sprintf("%s/%d", p.Name, p.Arity) }

package nullsem

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/relational"
	"repro/internal/term"
)

// This file contains the literal implementation of Definition 4: materialize
// the projected instance D^A(ψ) (Definition 3), build the transformed
// constraint ψ_N, and check classical first-order satisfaction with null
// treated as an ordinary constant. It exists as an independently derived
// oracle for the direct evaluator in nullsem.go; the two are cross-checked
// by property tests.
//
// Predicates are identified by name and arity throughout the library (the
// paper fixes one arity per predicate, but Example 1 is loose about it), so
// the projection tags each projected predicate with its original arity to
// keep, say, R/1 and R/2 distinct after their arities change.

// ProjectedConstraint is ψ restricted to its relevant attributes, i.e. the
// predicate-atom skeleton of ψ_N (formula (4)) minus the IsNull disjuncts,
// which the evaluator applies directly.
type ProjectedConstraint struct {
	// Positions maps every predicate signature of ψ to its sorted
	// relevant positions (possibly empty: the predicate projects to
	// arity 0).
	Positions map[constraint.PredSig][]int
	Body      []term.Atom
	Head      []term.Atom
	Phi       []term.Builtin
}

// projName is the tagged name of a projected predicate.
func projName(sig constraint.PredSig) string {
	return fmt.Sprintf("%s#%d", sig.Name, sig.Arity)
}

// ProjectConstraint computes the projected skeleton of ψ_N.
func ProjectConstraint(ic *constraint.IC) ProjectedConstraint {
	rel := ic.RelevantAttrs()
	positions := map[constraint.PredSig][]int{}
	record := func(a term.Atom) constraint.PredSig {
		sig := constraint.PredSig{Name: a.Pred, Arity: a.Arity()}
		if _, ok := positions[sig]; ok {
			return sig
		}
		pos := []int{}
		for _, p := range rel[a.Pred] {
			if p < a.Arity() {
				pos = append(pos, p)
			}
		}
		positions[sig] = pos
		return sig
	}
	project := func(a term.Atom) term.Atom {
		sig := record(a)
		args := make([]term.T, 0, len(positions[sig]))
		for _, p := range positions[sig] {
			args = append(args, a.Args[p])
		}
		return term.Atom{Pred: projName(sig), Args: args}
	}
	out := ProjectedConstraint{Positions: positions, Phi: ic.Phi}
	for _, a := range ic.Body {
		out.Body = append(out.Body, project(a))
	}
	for _, a := range ic.Head {
		out.Head = append(out.Head, project(a))
	}
	return out
}

// ProjectInstance materializes D^A(ψ) with arity-tagged predicate names.
func ProjectInstance(d *relational.Instance, pc ProjectedConstraint) *relational.Instance {
	out := relational.NewInstance()
	d.ForEach(func(f relational.Fact) bool {
		sig := constraint.PredSig{Name: f.Pred, Arity: len(f.Args)}
		if pos, ok := pc.Positions[sig]; ok {
			out.Insert(relational.Fact{Pred: projName(sig), Args: f.Args.Project(pos)})
		}
		return true
	})
	return out
}

// SatisfiesICOracle decides D |=_N ψ by the book: D^A(ψ) |= ψ_N with null as
// an ordinary constant.
func SatisfiesICOracle(d *relational.Instance, ic *constraint.IC) bool {
	pc := ProjectConstraint(ic)
	dA := ProjectInstance(d, pc)
	ok := true
	joinBody(dA, pc.Body, func(subst term.Subst, _ []relational.Fact) bool {
		// IsNull disjuncts: every variable surviving the projection is
		// relevant (non-relevant variables occupy dropped positions),
		// so any null binding satisfies ψ_N.
		for _, v := range subst {
			if v.IsNull() {
				return true
			}
		}
		if phiHolds(NullAware, pc.Phi, subst) {
			return true
		}
		if oracleConsequent(dA, pc, subst) {
			return true
		}
		ok = false
		return false
	})
	return ok
}

// oracleConsequent checks ∃z̄ ⋁ Q_j^A(ȳ_j, z̄_j) over the projected instance
// classically: all projected positions must match, with consistent bindings
// for repeated existential variables.
func oracleConsequent(dA *relational.Instance, pc ProjectedConstraint, subst term.Subst) bool {
	for _, a := range pc.Head {
		found := false
		dA.Scan(a.Pred, a.Arity(), relational.AtomBindings(a, subst), func(tuple relational.Tuple) bool {
			local := subst.Clone()
			if _, ok := matchAtom(tuple, a, local); ok {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// SatisfiesOracle checks a whole set via the projection-based oracle (NNCs
// are classical either way).
func SatisfiesOracle(d *relational.Instance, s *constraint.Set) bool {
	for _, ic := range s.ICs {
		if !SatisfiesICOracle(d, ic) {
			return false
		}
	}
	for _, n := range s.NNCs {
		if len(CheckNNC(d, n)) > 0 {
			return false
		}
	}
	return true
}

package nullsem

// This file implements the Δ-seeded (semi-naive) side of constraint
// checking: given an instance d that differs from a *satisfying* parent by a
// known delta, every violation of d must involve the delta — either a
// changed fact occurs in the violating antecedent, or the changed fact was
// the consequent witness the assignment just lost. So instead of re-joining
// the whole constraint body over the whole instance, the incremental probes
// instantiate only the constraint occurrences whose literals unify with a
// changed fact: each candidate join is anchored on a Δ-atom (an added fact
// bound to one body atom, or the body bindings a removed fact imposed as a
// witness) and completed against the indexed store. Candidates are then
// confirmed with the exact scratch predicate (violationAt), so the
// incremental verdicts are identical to the scratch ones by construction.
//
// Soundness of the seeding, per delta direction:
//
//   - an added fact g can only create violations whose antecedent support
//     contains g (assignments supported entirely by the parent were already
//     checked there, and additions never remove witnesses);
//   - a removed fact f can only create violations among assignments that
//     held in the parent *because f witnessed their consequent* — so the
//     candidate assignments are exactly the body joins compatible with the
//     bindings f imposes through some head atom (witnessSeed);
//   - exemption (Definition 4's relevant-null test), ϕ, and the FullMatch
//     forced-violation verdict depend only on the assignment itself, so they
//     cannot flip without the body join changing.
//
// The contract is checked by the randomized differential suite in
// incremental_test.go, which pins every Δ-seeded result against the scratch
// evaluators over random instances, deltas, and all six semantics.

import (
	"repro/internal/constraint"
	"repro/internal/relational"
	"repro/internal/term"
)

// ICChecker caches the per-constraint analysis for repeated scratch and
// Δ-seeded probes of a single IC under a fixed semantics. The repair search
// builds one checker per IC per enumeration, so the per-probe cost is the
// join work alone, not the constraint analysis.
//
// A checker is immutable after construction and safe for concurrent use.
type ICChecker struct {
	ic    *constraint.IC
	sem   Semantics
	c     *icContext
	preds map[string]bool
}

// NewICChecker analyses ic once for repeated probing under sem.
func NewICChecker(ic *constraint.IC, sem Semantics) *ICChecker {
	preds := map[string]bool{}
	for _, a := range ic.Body {
		preds[a.Pred] = true
	}
	for _, a := range ic.Head {
		preds[a.Pred] = true
	}
	return &ICChecker{ic: ic, sem: sem, c: newICContext(ic), preds: preds}
}

// IC returns the constraint this checker probes.
func (k *ICChecker) IC() *constraint.IC { return k.ic }

// SharesPred reports whether the constraint mentions the predicate in its
// body or head. A constraint that shares no predicate with a delta cannot
// change its satisfaction status across that delta.
func (k *ICChecker) SharesPred(pred string) bool { return k.preds[pred] }

// Violations returns the complete violation list of the IC on d, from
// scratch, in deterministic (body-join) order — CheckIC with the cached
// analysis.
func (k *ICChecker) Violations(d *relational.Instance) []Violation {
	var out []Violation
	joinBody(d, k.ic.Body, func(subst term.Subst, support []relational.Fact) bool {
		if v, ok := violationAt(k.c, d, k.sem, subst, support); ok {
			out = append(out, v)
		}
		return true
	})
	return out
}

// First returns a deterministic first violation on d, from scratch, stopping
// the body join as soon as one is found — FirstViolationIC with the cached
// analysis.
func (k *ICChecker) First(d *relational.Instance) (Violation, bool) {
	var out Violation
	found := false
	joinBody(d, k.ic.Body, func(subst term.Subst, support []relational.Fact) bool {
		if v, bad := violationAt(k.c, d, k.sem, subst, support); bad {
			out, found = v, true
			return false
		}
		return true
	})
	return out, found
}

// FirstFrom returns a deterministic first violation of the IC on d, probing
// only Δ-seeded candidates. Contract: the pre-delta parent instance
// (d − delta.Added + delta.Removed) satisfies the IC; then d violates the IC
// iff FirstFrom finds a violation.
func (k *ICChecker) FirstFrom(d *relational.Instance, delta relational.Delta) (Violation, bool) {
	var out Violation
	found := false
	k.seeded(d, delta, func(subst term.Subst, support []relational.Fact) bool {
		if v, bad := violationAt(k.c, d, k.sem, subst, support); bad {
			out, found = v, true
			return false
		}
		return true
	})
	return out, found
}

// ViolationsFrom returns the complete violation list of the IC on d under
// the FirstFrom contract (the pre-delta parent satisfied the IC), probing
// only Δ-seeded candidates and deduplicating assignments found through
// multiple anchors. Survivor order is the deterministic seeding order.
func (k *ICChecker) ViolationsFrom(d *relational.Instance, delta relational.Delta) []Violation {
	var out []Violation
	var seen map[string]bool
	k.seeded(d, delta, func(subst term.Subst, support []relational.Fact) bool {
		key := k.c.substKey(subst)
		if seen[key] {
			return true
		}
		if seen == nil {
			seen = map[string]bool{}
		}
		seen[key] = true
		if v, bad := violationAt(k.c, d, k.sem, subst, support); bad {
			out = append(out, v)
		}
		return true
	})
	return out
}

// Update advances a *complete* violation list across a delta: given prev =
// the full violations of the IC on the pre-delta parent (in some order), it
// returns the full violations on d, preserving the relative order of
// surviving entries and appending newly created ones in deterministic
// seeding order. Unlike FirstFrom/ViolationsFrom, Update does not require
// the parent to satisfy the IC — prev must just be complete. This is what
// the repair search threads through the work-list: each node's list is its
// parent's list advanced by the node's one-fact fix.
func (k *ICChecker) Update(d *relational.Instance, prev []Violation, delta relational.Delta) []Violation {
	if len(prev) == 0 {
		return k.ViolationsFrom(d, delta)
	}
	out := make([]Violation, 0, len(prev))
	var seen map[string]bool
	for i := range prev {
		v := &prev[i]
		if supportHit(v.Support, delta.Removed) {
			continue // the antecedent match itself is gone
		}
		if len(delta.Added) > 0 && k.addedWitness(v.Subst, delta.Added) {
			// A forced FullMatch violation stays violated no matter the
			// witnesses; otherwise the parent had no witness, so d has one
			// iff an added fact matches.
			if _, forcedViolation := k.c.exempt(k.sem, v.Subst, v.Support); !forcedViolation {
				continue
			}
		}
		out = append(out, *v)
		if seen == nil {
			seen = make(map[string]bool, len(prev))
		}
		seen[k.c.substKey(v.Subst)] = true
	}
	k.seeded(d, delta, func(subst term.Subst, support []relational.Fact) bool {
		key := k.c.substKey(subst)
		if seen[key] {
			return true
		}
		if seen == nil {
			seen = map[string]bool{}
		}
		seen[key] = true
		if v, bad := violationAt(k.c, d, k.sem, subst, support); bad {
			out = append(out, v)
		}
		return true
	})
	return out
}

// supportHit reports whether any removed fact occurs in the support list.
func supportHit(support, removed []relational.Fact) bool {
	for _, f := range support {
		for _, r := range removed {
			if f.Equal(r) {
				return true
			}
		}
	}
	return false
}

// addedWitness reports whether some added fact witnesses the consequent
// under the assignment.
func (k *ICChecker) addedWitness(subst term.Subst, added []relational.Fact) bool {
	for _, g := range added {
		for _, a := range k.ic.Head {
			if a.Pred != g.Pred || a.Arity() != len(g.Args) {
				continue
			}
			if k.c.witnessMatches(k.sem, a, g.Args, subst) {
				return true
			}
		}
	}
	return false
}

// seeded enumerates the candidate violating assignments of d that involve
// the delta: full body joins anchored on each added fact, and full body
// joins seeded with the bindings each removed fact imposed as a consequent
// witness. Candidates may repeat across anchors and include non-violations;
// callers deduplicate (by substKey) and confirm through violationAt. The
// enumeration order is deterministic. yield returns false to stop early.
func (k *ICChecker) seeded(d *relational.Instance, delta relational.Delta, yield func(term.Subst, []relational.Fact) bool) {
	body := k.ic.Body
	for i := range delta.Added {
		g := &delta.Added[i]
		for j := range body {
			if body[j].Pred != g.Pred || body[j].Arity() != len(g.Args) {
				continue
			}
			subst := term.Subst{}
			if _, ok := matchAtom(g.Args, body[j], subst); !ok {
				continue
			}
			support := make([]relational.Fact, len(body))
			support[j] = *g
			if !k.joinRest(d, subst, support, j, 0, yield) {
				return
			}
		}
	}
	for i := range delta.Removed {
		f := &delta.Removed[i]
		for _, a := range k.ic.Head {
			if a.Pred != f.Pred || a.Arity() != len(f.Args) {
				continue
			}
			subst, ok := k.witnessSeed(a, f.Args)
			if !ok {
				continue
			}
			support := make([]relational.Fact, len(body))
			if !k.joinRest(d, subst, support, -1, 0, yield) {
				return
			}
		}
	}
}

// joinRest completes a seeded body join: atoms before i are resolved (the
// one at skip, if any, is pre-bound to the anchor), the rest are joined in
// order through indexed scans on the columns the substitution already binds.
func (k *ICChecker) joinRest(d *relational.Instance, subst term.Subst, support []relational.Fact, skip, i int, yield func(term.Subst, []relational.Fact) bool) bool {
	if i == len(k.ic.Body) {
		return yield(subst, support)
	}
	if i == skip {
		return k.joinRest(d, subst, support, skip, i+1, yield)
	}
	a := k.ic.Body[i]
	cont := true
	d.Scan(a.Pred, a.Arity(), relational.AtomBindings(a, subst), func(tuple relational.Tuple) bool {
		bound, ok := matchAtom(tuple, a, subst)
		if !ok {
			return true
		}
		support[i] = relational.Fact{Pred: a.Pred, Args: tuple}
		cont = k.joinRest(d, subst, support, skip, i+1, yield)
		undo(subst, bound)
		return cont
	})
	return cont
}

// witnessSeed derives the body-variable bindings a removed fact imposed as a
// potential consequent witness through head atom a. ok = false means the
// fact can not have witnessed any assignment through a (so nothing needs
// seeding). Positions the semantics does not tie to a single body value
// (PartialMatch's null-tolerant comparison, existential variables) are left
// unbound — an over-approximation the violationAt confirmation makes exact.
func (k *ICChecker) witnessSeed(a term.Atom, tuple relational.Tuple) (term.Subst, bool) {
	subst := term.Subst{}
	for i, t := range a.Args {
		switch {
		case !t.IsVar():
			// Constraints never mention null (form (1)), so a constant
			// position demands plain equality under every semantics.
			if !tuple[i].Eq(t.Const) {
				return nil, false
			}
		case k.c.body[t.Var]:
			switch k.sem {
			case NullAware, ClassicFO, AllExempt:
				// Plain Eq witness comparison: the witness value *is* the
				// assignment's value.
			case SimpleMatch, FullMatch, PartialMatch:
				// Non-null equality: a null witness value matches nothing
				// (Eq3 never True3 against null; PartialMatch's null want
				// demands a non-null witness).
				if tuple[i].IsNull() {
					return nil, false
				}
				if k.sem == PartialMatch {
					// σ(v) is either tuple[i] or null; leave v unbound.
					continue
				}
			}
			if v, bound := subst[t.Var]; bound {
				if !tuple[i].Eq(v) {
					return nil, false
				}
			} else {
				subst[t.Var] = tuple[i]
			}
		default:
			// Existential position: imposes no body binding.
		}
	}
	return subst, true
}

// SetChecker caches per-IC checkers for a whole constraint set, for repeated
// Δ-anchored consistency checks against one semantics (the repair search's
// minimality certificates re-check many sibling instances of one consistent
// leaf).
type SetChecker struct {
	set *constraint.Set
	sem Semantics
	ics []*ICChecker
}

// NewSetChecker analyses every IC of the set once.
func NewSetChecker(set *constraint.Set, sem Semantics) *SetChecker {
	sc := &SetChecker{set: set, sem: sem, ics: make([]*ICChecker, len(set.ICs))}
	for i, ic := range set.ICs {
		sc.ics[i] = NewICChecker(ic, sem)
	}
	return sc
}

// SatisfiesFrom reports d |= set under the checker's semantics, given that
// the pre-delta parent (d − delta.Added + delta.Removed) satisfies the set.
// Constraints sharing no predicate with the delta are skipped outright; the
// rest are probed Δ-seeded. Violations found are always genuine (each
// candidate is confirmed on d), so a false result is trustworthy even if the
// parent contract is broken; only a true result relies on it.
func (sc *SetChecker) SatisfiesFrom(d *relational.Instance, delta relational.Delta) bool {
	for _, k := range sc.ics {
		if !k.sharesAny(delta) {
			continue
		}
		if _, found := k.FirstFrom(d, delta); found {
			return false
		}
	}
	// NNC satisfaction is classical and per-fact: deletions never violate,
	// so only the added facts need the null probe (Definition 5).
	for _, n := range sc.set.NNCs {
		for i := range delta.Added {
			g := &delta.Added[i]
			if g.Pred == n.Pred && len(g.Args) == n.Arity && g.Args[n.Pos].IsNull() {
				return false
			}
		}
	}
	return true
}

func (k *ICChecker) sharesAny(delta relational.Delta) bool {
	for i := range delta.Added {
		if k.preds[delta.Added[i].Pred] {
			return true
		}
	}
	for i := range delta.Removed {
		if k.preds[delta.Removed[i].Pred] {
			return true
		}
	}
	return false
}

// FirstViolationICFrom is the Δ-seeded counterpart of FirstViolationIC:
// given that the pre-delta parent of d (d − delta.Added + delta.Removed)
// satisfies ic under sem, it finds a violation of d iff one exists, probing
// only constraint occurrences that unify with a changed fact.
func FirstViolationICFrom(d *relational.Instance, ic *constraint.IC, sem Semantics, delta relational.Delta) (Violation, bool) {
	return NewICChecker(ic, sem).FirstFrom(d, delta)
}

// SatisfiesFrom is the Δ-seeded counterpart of Satisfies: given that the
// pre-delta parent of d satisfies the whole set under sem, it decides
// d |= set by probing only the constraints the delta can affect.
func SatisfiesFrom(d *relational.Instance, s *constraint.Set, sem Semantics, delta relational.Delta) bool {
	return NewSetChecker(s, sem).SatisfiesFrom(d, delta)
}

// Package nullsem implements the paper's null-aware integrity-constraint
// satisfaction semantics |=_N (Definitions 4 and 5) together with the
// comparison semantics discussed in Section 3: classical first-order
// satisfaction, the all-exempt semantics of Bravo & Bertossi (CASCON 2004,
// the paper's [10]), and the SQL:2003 simple-, partial- and full-match
// semantics implemented by commercial DBMSs.
//
// The primary evaluator works directly on the original instance D. This is
// equivalent to the paper's formulation over the projected instance D^A(ψ)
// because non-relevant variables occur exactly once in ψ and therefore
// impose no join or matching conditions; package nullsem also ships the
// literal projection-based evaluator (oracle.go) and the equivalence is
// property-tested.
package nullsem

import (
	"fmt"
	"strings"

	"repro/internal/constraint"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// Semantics selects an IC-satisfaction semantics for databases with nulls.
type Semantics uint8

const (
	// NullAware is the paper's |=_N (Definition 4): a constraint is
	// satisfied if a relevant antecedent attribute is null, or the
	// consequent holds over the relevant attributes with null treated as
	// an ordinary constant.
	NullAware Semantics = iota
	// ClassicFO is plain first-order satisfaction with null treated as an
	// ordinary constant (the pre-null literature: the paper's [2]).
	ClassicFO
	// AllExempt is the semantics of the paper's [10]: a tuple with a null
	// anywhere never causes an inconsistency.
	AllExempt
	// SimpleMatch is the SQL:2003 simple-match semantics (the one
	// commercial DBMSs implement): null in any relevant antecedent
	// attribute exempts the tuple; witnesses must match with non-null
	// equality.
	SimpleMatch
	// PartialMatch is the SQL:2003 partial-match semantics: only a fully
	// null antecedent key is exempt; witnesses must agree, non-null, on
	// the non-null antecedent values.
	PartialMatch
	// FullMatch is the SQL:2003 full-match semantics: a partially null
	// antecedent key is an outright violation; otherwise witnesses must
	// match exactly with non-null equality.
	FullMatch
)

func (s Semantics) String() string {
	switch s {
	case NullAware:
		return "null-aware"
	case ClassicFO:
		return "classic-fo"
	case AllExempt:
		return "all-exempt"
	case SimpleMatch:
		return "simple-match"
	case PartialMatch:
		return "partial-match"
	default:
		return "full-match"
	}
}

// AllSemantics lists every implemented semantics, in presentation order.
func AllSemantics() []Semantics {
	return []Semantics{NullAware, ClassicFO, AllExempt, SimpleMatch, PartialMatch, FullMatch}
}

// Violation records one falsifying assignment of an IC: the substitution
// over the antecedent variables and the ground body atoms supporting it.
type Violation struct {
	IC      *constraint.IC
	Subst   term.Subst
	Support []relational.Fact
}

func (v Violation) String() string {
	parts := make([]string, len(v.Support))
	for i, f := range v.Support {
		parts[i] = f.String()
	}
	return fmt.Sprintf("%s violated by %s via %s", v.IC.Name, strings.Join(parts, ", "), v.Subst)
}

// NNCViolation records a fact violating a NOT NULL-constraint.
type NNCViolation struct {
	NNC  *constraint.NNC
	Fact relational.Fact
}

func (v NNCViolation) String() string {
	return fmt.Sprintf("%s violated by %s", v.NNC.Name, v.Fact)
}

// icContext caches the per-constraint analysis shared by all checks.
type icContext struct {
	ic      *constraint.IC
	counts  map[string]int // total occurrences per variable in ψ
	body    map[string]bool
	varList []string // body variables in first-occurrence order (subst keys)
}

func newICContext(ic *constraint.IC) *icContext {
	var all []string
	for _, a := range ic.Body {
		all = a.Vars(all)
	}
	for _, a := range ic.Head {
		all = a.Vars(all)
	}
	for _, b := range ic.Phi {
		all = b.Vars(all)
	}
	counts := map[string]int{}
	for _, v := range all {
		counts[v]++
	}
	varList := ic.BodyVars()
	body := map[string]bool{}
	for _, v := range varList {
		body[v] = true
	}
	return &icContext{ic: ic, counts: counts, body: body, varList: varList}
}

// substKey is a canonical injective encoding of an antecedent assignment: the
// content encodings of the body variables' values, in first-occurrence order
// (self-delimiting, so the concatenation stays injective). All body variables
// must be bound (which every full body join guarantees).
func (c *icContext) substKey(subst term.Subst) string {
	b := make([]byte, 0, 10*len(c.varList))
	for _, v := range c.varList {
		b = subst[v].AppendKey(b)
	}
	return string(b)
}

// relevantVar reports whether v occupies a relevant position, i.e. occurs
// at least twice in ψ (Definition 2).
func (c *icContext) relevantVar(v string) bool { return c.counts[v] >= 2 }

// joinBody enumerates every substitution of the antecedent variables whose
// ground body atoms all belong to d, treating null as an ordinary constant.
// Each atom is resolved by an indexed scan on its bound columns, so the join
// cost tracks the matching tuples rather than the relation sizes. yield
// returns false to stop the enumeration early.
func joinBody(d *relational.Instance, body []term.Atom, yield func(term.Subst, []relational.Fact) bool) {
	subst := term.Subst{}
	support := make([]relational.Fact, 0, len(body))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(body) {
			return yield(subst, support)
		}
		a := body[i]
		cont := true
		d.Scan(a.Pred, a.Arity(), relational.AtomBindings(a, subst), func(tuple relational.Tuple) bool {
			bound, ok := matchAtom(tuple, a, subst)
			if !ok {
				return true
			}
			support = append(support, relational.Fact{Pred: a.Pred, Args: tuple})
			cont = rec(i + 1)
			support = support[:len(support)-1]
			undo(subst, bound)
			return cont
		})
		return cont
	}
	rec(0)
}

// matchAtom unifies a tuple with an atom pattern under the current
// substitution, binding previously unbound variables. It returns the newly
// bound variables so the caller can backtrack.
func matchAtom(tuple relational.Tuple, a term.Atom, subst term.Subst) (bound []string, ok bool) {
	for i, t := range a.Args {
		if !t.IsVar() {
			if !tuple[i].Eq(t.Const) {
				undo(subst, bound)
				return nil, false
			}
			continue
		}
		if v, isBound := subst[t.Var]; isBound {
			if !tuple[i].Eq(v) {
				undo(subst, bound)
				return nil, false
			}
			continue
		}
		subst[t.Var] = tuple[i]
		bound = append(bound, t.Var)
	}
	return bound, true
}

func undo(subst term.Subst, bound []string) {
	for _, v := range bound {
		delete(subst, v)
	}
}

// exempt reports whether the antecedent assignment is exempt from the
// constraint under the given semantics; definite reports a forced verdict
// for FullMatch (a partially null key violates no matter the witnesses).
func (c *icContext) exempt(sem Semantics, subst term.Subst, support []relational.Fact) (exempt, forcedViolation bool) {
	switch sem {
	case ClassicFO:
		return false, false
	case AllExempt:
		for _, f := range support {
			if f.Args.HasNull() {
				return true, false
			}
		}
		return false, false
	case NullAware, SimpleMatch:
		for v, val := range subst {
			if c.relevantVar(v) && val.IsNull() {
				return true, false
			}
		}
		return false, false
	default: // PartialMatch, FullMatch
		total, nulls := 0, 0
		for v, val := range subst {
			if !c.relevantVar(v) {
				continue
			}
			total++
			if val.IsNull() {
				nulls++
			}
		}
		if total > 0 && nulls == total {
			return true, false
		}
		if sem == FullMatch && nulls > 0 {
			return false, true
		}
		return false, false
	}
}

// phiHolds evaluates the disjunction ϕ under the semantics' comparison
// logic: two-valued with null as an ordinary constant for NullAware /
// ClassicFO / AllExempt, three-valued (unknown passes) for the SQL
// semantics, matching the DBMS behaviour of Example 6.
func phiHolds(sem Semantics, phi []term.Builtin, subst term.Subst) bool {
	for _, b := range phi {
		switch sem {
		case SimpleMatch, PartialMatch, FullMatch:
			if res, ok := b.Eval3(subst); ok && res != value.False3 {
				return true
			}
		default:
			if res, ok := b.Eval(subst); ok && res {
				return true
			}
		}
	}
	return false
}

// witnessMatches reports whether tuple can serve as a witness for head atom
// a under the semantics. exists tracks bindings of repeated existential
// variables across positions of this atom.
func (c *icContext) witnessMatches(sem Semantics, a term.Atom, tuple relational.Tuple, subst term.Subst) bool {
	exists := map[string]value.V{}
	for i, t := range a.Args {
		var want value.V
		haveWant := false
		switch {
		case !t.IsVar():
			want, haveWant = t.Const, true
		case c.body[t.Var]:
			want, haveWant = subst[t.Var], true
		default: // existential variable
			switch sem {
			case ClassicFO:
				// Classical satisfaction constrains every
				// existential position for consistency.
				if prev, seen := exists[t.Var]; seen {
					if !tuple[i].Eq(prev) {
						return false
					}
				} else {
					exists[t.Var] = tuple[i]
				}
				continue
			default:
				if !c.relevantVar(t.Var) {
					continue // projected away by A(ψ)
				}
				if prev, seen := exists[t.Var]; seen {
					want, haveWant = prev, true
				} else {
					exists[t.Var] = tuple[i]
					continue
				}
			}
		}
		if !haveWant {
			continue
		}
		switch sem {
		case NullAware, ClassicFO, AllExempt:
			if !tuple[i].Eq(want) {
				return false
			}
		case PartialMatch:
			if want.IsNull() {
				if tuple[i].IsNull() {
					return false
				}
				continue
			}
			if tuple[i].Eq3(want) != value.True3 {
				return false
			}
		default: // SimpleMatch, FullMatch: non-null equality
			if tuple[i].Eq3(want) != value.True3 {
				return false
			}
		}
	}
	return true
}

// witnessBindings derives the index-servable columns for a witness scan of
// head atom a: constants and body-variable positions whose comparison under
// sem is plain interned equality. possible is false when the wanted value at
// some position already rules out every witness (a null want under the
// non-null-equality SQL semantics), letting the caller skip the scan.
func (c *icContext) witnessBindings(sem Semantics, a term.Atom, subst term.Subst) (bs []relational.Binding, possible bool) {
	for i, t := range a.Args {
		var want value.V
		switch {
		case !t.IsVar():
			want = t.Const
		case c.body[t.Var]:
			want = subst[t.Var]
		default:
			continue // existential: handled by witnessMatches
		}
		switch sem {
		case NullAware, ClassicFO, AllExempt:
			// Plain Eq: interned-id equality, null included.
			bs = append(bs, relational.Binding{Pos: i, Val: want})
		case SimpleMatch, FullMatch:
			// Eq3 == True3 requires a non-null want.
			if want.IsNull() {
				return nil, false
			}
			bs = append(bs, relational.Binding{Pos: i, Val: want})
		default: // PartialMatch
			// A null want demands a non-null witness value — not an
			// equality; leave it to witnessMatches.
			if !want.IsNull() {
				bs = append(bs, relational.Binding{Pos: i, Val: want})
			}
		}
	}
	return bs, true
}

// consequentHolds reports whether some head atom has a witness in d under
// the given antecedent assignment, probing the witness relation through the
// index on the bound columns.
func (c *icContext) consequentHolds(sem Semantics, d *relational.Instance, subst term.Subst) bool {
	for _, a := range c.ic.Head {
		bs, possible := c.witnessBindings(sem, a, subst)
		if !possible {
			continue
		}
		found := false
		d.Scan(a.Pred, a.Arity(), bs, func(tuple relational.Tuple) bool {
			if c.witnessMatches(sem, a, tuple, subst) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// CheckIC returns every violation of a single IC in d under the given
// semantics. The returned substitutions cover all antecedent variables.
func CheckIC(d *relational.Instance, ic *constraint.IC, sem Semantics) []Violation {
	var out []Violation
	c := newICContext(ic)
	joinBody(d, ic.Body, func(subst term.Subst, support []relational.Fact) bool {
		if v, ok := violationAt(c, d, sem, subst, support); ok {
			out = append(out, v)
		}
		return true
	})
	return out
}

func violationAt(c *icContext, d *relational.Instance, sem Semantics, subst term.Subst, support []relational.Fact) (Violation, bool) {
	ex, forced := c.exempt(sem, subst, support)
	if ex {
		return Violation{}, false
	}
	if !forced {
		if phiHolds(sem, c.ic.Phi, subst) {
			return Violation{}, false
		}
		if c.consequentHolds(sem, d, subst) {
			return Violation{}, false
		}
	}
	sup := make([]relational.Fact, len(support))
	for i, f := range support {
		sup[i] = relational.Fact{Pred: f.Pred, Args: f.Args.Clone()}
	}
	return Violation{IC: c.ic, Subst: subst.Clone(), Support: sup}, true
}

// SatisfiesIC reports d |= ic under the given semantics, stopping at the
// first violation.
func SatisfiesIC(d *relational.Instance, ic *constraint.IC, sem Semantics) bool {
	ok := true
	c := newICContext(ic)
	joinBody(d, ic.Body, func(subst term.Subst, support []relational.Fact) bool {
		if _, bad := violationAt(c, d, sem, subst, support); bad {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// CheckNNC returns the facts of d violating the NOT NULL-constraint.
// NNC satisfaction is classical under every semantics (Definition 5).
// The scan is index-backed on the constrained column (null is an ordinary
// constant, so "is null at position p" is an equality probe).
func CheckNNC(d *relational.Instance, n *constraint.NNC) []relational.Fact {
	var out []relational.Fact
	d.Scan(n.Pred, n.Arity, []relational.Binding{{Pos: n.Pos, Val: value.Null()}}, func(tuple relational.Tuple) bool {
		out = append(out, relational.Fact{Pred: n.Pred, Args: tuple})
		return true
	})
	return out
}

// FirstViolationIC returns a deterministic first violation of a single IC,
// stopping the body join as soon as one is found. It is the hot probe of the
// repair search, which only ever needs one violation per state.
func FirstViolationIC(d *relational.Instance, ic *constraint.IC, sem Semantics) (Violation, bool) {
	var out Violation
	found := false
	c := newICContext(ic)
	joinBody(d, ic.Body, func(subst term.Subst, support []relational.Fact) bool {
		if v, bad := violationAt(c, d, sem, subst, support); bad {
			out, found = v, true
			return false
		}
		return true
	})
	return out, found
}

// FirstViolationNNC returns a deterministic first fact violating the NOT
// NULL-constraint, if any, without materializing the full violation list.
func FirstViolationNNC(d *relational.Instance, n *constraint.NNC) (relational.Fact, bool) {
	var out relational.Fact
	found := false
	d.Scan(n.Pred, n.Arity, []relational.Binding{{Pos: n.Pos, Val: value.Null()}}, func(tuple relational.Tuple) bool {
		out, found = relational.Fact{Pred: n.Pred, Args: tuple}, true
		return false
	})
	return out, found
}

// Report collects every violation of a constraint set.
type Report struct {
	IC  []Violation
	NNC []NNCViolation
}

// Consistent reports whether the report is empty.
func (r Report) Consistent() bool { return len(r.IC) == 0 && len(r.NNC) == 0 }

func (r Report) String() string {
	if r.Consistent() {
		return "consistent"
	}
	var lines []string
	for _, v := range r.IC {
		lines = append(lines, v.String())
	}
	for _, v := range r.NNC {
		lines = append(lines, v.String())
	}
	return strings.Join(lines, "\n")
}

// Check returns all violations of the set in d under the given semantics.
func Check(d *relational.Instance, s *constraint.Set, sem Semantics) Report {
	var r Report
	for _, ic := range s.ICs {
		r.IC = append(r.IC, CheckIC(d, ic, sem)...)
	}
	for _, n := range s.NNCs {
		for _, f := range CheckNNC(d, n) {
			r.NNC = append(r.NNC, NNCViolation{NNC: n, Fact: f})
		}
	}
	return r
}

// Satisfies reports D |=_N IC for sem == NullAware, and the corresponding
// judgment for the other semantics.
func Satisfies(d *relational.Instance, s *constraint.Set, sem Semantics) bool {
	for _, ic := range s.ICs {
		if !SatisfiesIC(d, ic, sem) {
			return false
		}
	}
	for _, n := range s.NNCs {
		if len(CheckNNC(d, n)) > 0 {
			return false
		}
	}
	return true
}

// InsertionAllowed reports whether inserting f into d keeps the database
// consistent under the given semantics — the DBMS behaviour the paper probes
// in Examples 5 and 6 ("the insertion would be rejected by DB2").
func InsertionAllowed(d *relational.Instance, s *constraint.Set, f relational.Fact, sem Semantics) bool {
	if d.Has(f) {
		return Satisfies(d, s, sem)
	}
	d2 := d.Clone()
	d2.Insert(f)
	return Satisfies(d2, s, sem)
}

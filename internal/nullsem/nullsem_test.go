package nullsem

import (
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

func v(name string) term.T                       { return term.V(name) }
func atom(pred string, args ...term.T) term.Atom { return term.NewAtom(pred, args...) }
func s(x string) value.V                         { return value.Str(x) }
func i(x int64) value.V                          { return value.Int(x) }
func n() value.V                                 { return value.Null() }
func fact(pred string, args ...value.V) relational.Fact {
	return relational.F(pred, args...)
}

func set(t *testing.T, ics []*constraint.IC, nncs []*constraint.NNC) *constraint.Set {
	t.Helper()
	cs, err := constraint.NewSet(ics, nncs)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// --- Example 4 -------------------------------------------------------------

func example4() (d *relational.Instance, psi1, psi2 *constraint.IC) {
	d = relational.NewInstance(fact("P", s("a"), s("b"), n()))
	psi1 = &constraint.IC{
		Name: "psi1",
		Body: []term.Atom{atom("P", v("x"), v("y"), v("z"))},
		Head: []term.Atom{atom("R", v("y"), v("z"))},
	}
	psi2 = &constraint.IC{
		Name: "psi2",
		Body: []term.Atom{atom("P", v("x"), v("y"), v("z"))},
		Head: []term.Atom{atom("R", v("x"), v("y"))},
	}
	return
}

func TestExample4VerdictMatrix(t *testing.T) {
	d, psi1, psi2 := example4()
	// Paper: ψ1 is consistent under [10] and simple-match (and ours),
	// inconsistent under partial- and full-match. ψ2 is consistent only
	// under [10].
	wantPsi1 := map[Semantics]bool{
		NullAware:    true,
		ClassicFO:    false,
		AllExempt:    true,
		SimpleMatch:  true,
		PartialMatch: false,
		FullMatch:    false,
	}
	wantPsi2 := map[Semantics]bool{
		NullAware:    false,
		ClassicFO:    false,
		AllExempt:    true,
		SimpleMatch:  false,
		PartialMatch: false,
		FullMatch:    false,
	}
	for sem, want := range wantPsi1 {
		if got := SatisfiesIC(d, psi1, sem); got != want {
			t.Errorf("ψ1 under %v = %v, want %v", sem, got, want)
		}
	}
	for sem, want := range wantPsi2 {
		if got := SatisfiesIC(d, psi2, sem); got != want {
			t.Errorf("ψ2 under %v = %v, want %v", sem, got, want)
		}
	}
}

// --- Example 5 -------------------------------------------------------------

func example5() (*relational.Instance, *constraint.Set) {
	d := relational.NewInstance(
		fact("Course", s("CS27"), i(21), s("W04")),
		fact("Course", s("CS18"), i(34), n()),
		fact("Course", s("CS50"), n(), s("W05")),
		fact("Exp", i(21), s("CS27"), i(3)),
		fact("Exp", i(34), s("CS18"), n()),
		fact("Exp", i(45), s("CS32"), i(2)),
	)
	fk := constraint.ForeignKey("Course", 3, []int{1, 0}, "Exp", 3, []int{0, 1})
	keyICs, keyNNCs := constraint.PrimaryKey("Exp", 3, 0, 1)
	cs := constraint.MustSet(append([]*constraint.IC{fk}, keyICs...), keyNNCs)
	return d, cs
}

func TestExample5DB2Behaviour(t *testing.T) {
	d, cs := example5()
	// "In IBM DB2, this database is accepted as consistent."
	if !Satisfies(d, cs, NullAware) {
		t.Errorf("Example 5 inconsistent under |=_N:\n%s", Check(d, cs, NullAware))
	}
	if !Satisfies(d, cs, SimpleMatch) {
		t.Error("Example 5 inconsistent under simple-match")
	}
	// "The partial- and full-match would not accept the database."
	if Satisfies(d, cs, PartialMatch) {
		t.Error("Example 5 consistent under partial-match")
	}
	if Satisfies(d, cs, FullMatch) {
		t.Error("Example 5 consistent under full-match")
	}
	// "If we try to insert tuple (CS41,18,null) into table Course, it
	// would be rejected by DB2."
	if InsertionAllowed(d, cs, fact("Course", s("CS41"), i(18), n()), NullAware) {
		t.Error("insertion of (CS41,18,null) must be rejected under |=_N")
	}
	if InsertionAllowed(d, cs, fact("Course", s("CS41"), i(18), n()), SimpleMatch) {
		t.Error("insertion of (CS41,18,null) must be rejected under simple-match")
	}
	// A matching insertion is fine.
	if !InsertionAllowed(d, cs, fact("Course", s("CS32"), i(45), n()), NullAware) {
		t.Error("insertion of (CS32,45,null) must be accepted")
	}
}

// --- Example 6 -------------------------------------------------------------

func example6() (*relational.Instance, *constraint.Set) {
	d := relational.NewInstance(
		fact("Emp", i(32), n(), i(1000)),
		fact("Emp", i(41), s("Paul"), n()),
	)
	chk := constraint.Check("salary",
		[]term.Atom{atom("Emp", v("id"), v("name"), v("salary"))},
		term.Builtin{Op: term.GT, L: v("salary"), R: term.CInt(100)})
	return d, constraint.MustSet([]*constraint.IC{chk}, nil)
}

func TestExample6CheckConstraint(t *testing.T) {
	d, cs := example6()
	for _, sem := range []Semantics{NullAware, AllExempt, SimpleMatch, PartialMatch} {
		if !Satisfies(d, cs, sem) {
			t.Errorf("Example 6 inconsistent under %v", sem)
		}
	}
	// "Tuple (32, null, 50) could not be inserted because Salary > 100
	// evaluates to false."
	if InsertionAllowed(d, cs, fact("Emp", i(32), n(), i(50)), NullAware) {
		t.Error("insertion of (32,null,50) must be rejected")
	}
	if InsertionAllowed(d, cs, fact("Emp", i(32), n(), i(50)), SimpleMatch) {
		t.Error("insertion of (32,null,50) must be rejected under simple-match")
	}
}

// --- Example 8 -------------------------------------------------------------

func example8IC() *constraint.IC {
	// Person(x,y,z,w) ∧ Person(z,s,t,u) → u > w+15.
	return &constraint.IC{
		Name: "age-gap",
		Body: []term.Atom{
			atom("Person", v("x"), v("y"), v("z"), v("w")),
			atom("Person", v("z"), v("s"), v("t"), v("u")),
		},
		Phi: []term.Builtin{{Op: term.GT, L: v("u"), R: v("w"), Offset: 15}},
	}
}

func TestExample8MultiRowCheck(t *testing.T) {
	d := relational.NewInstance(
		fact("Person", s("Lee"), s("Rod"), s("Mary"), i(27)),
		fact("Person", s("Rod"), s("Joe"), s("Tess"), i(55)),
		fact("Person", s("Mary"), s("Adam"), s("Ann"), n()),
	)
	ic := example8IC()
	if !SatisfiesIC(d, ic, NullAware) {
		t.Errorf("Example 8 must be consistent: %v", CheckIC(d, ic, NullAware))
	}
	// With Mary's age known and too low, the join Lee->Mary violates:
	// u=30 > 27+15 is false.
	d2 := relational.NewInstance(
		fact("Person", s("Lee"), s("Rod"), s("Mary"), i(27)),
		fact("Person", s("Mary"), s("Adam"), s("Ann"), i(30)),
	)
	if SatisfiesIC(d2, ic, NullAware) {
		t.Error("modified Example 8 must be inconsistent")
	}
	// u=43 > 27+15 = 42 holds.
	d3 := relational.NewInstance(
		fact("Person", s("Lee"), s("Rod"), s("Mary"), i(27)),
		fact("Person", s("Mary"), s("Adam"), s("Ann"), i(43)),
	)
	if !SatisfiesIC(d3, ic, NullAware) {
		t.Error("u=43 satisfies u > w+15 for w=27")
	}
}

// --- Example 9 -------------------------------------------------------------

func TestExample9NullInReferencedAttribute(t *testing.T) {
	d := relational.NewInstance(
		fact("Course", s("CS18"), s("W04"), i(34)),
		fact("Employee", s("W04"), n()),
	)
	ic := &constraint.IC{
		Name: "ex9",
		Body: []term.Atom{atom("Course", v("x"), v("y"), v("z"))},
		Head: []term.Atom{atom("Employee", v("y"), v("z"))},
	}
	// "(W04,34) does not provide less or equal information than
	// (W04,null). Therefore the database is inconsistent."
	if SatisfiesIC(d, ic, NullAware) {
		t.Error("Example 9 must be inconsistent under |=_N")
	}
	// With a proper witness it is consistent.
	d.Insert(fact("Employee", s("W04"), i(34)))
	if !SatisfiesIC(d, ic, NullAware) {
		t.Error("Example 9 with witness must be consistent")
	}
}

// --- Example 11 ------------------------------------------------------------

func example11() (*relational.Instance, *constraint.Set) {
	d := relational.NewInstance(
		fact("P", s("a"), s("d"), s("e")),
		fact("P", s("b"), n(), s("g")),
		fact("R", s("a"), s("d")),
		fact("T", s("b")),
	)
	a := &constraint.IC{
		Name: "a",
		Body: []term.Atom{atom("P", v("x"), v("y"), v("z"))},
		Head: []term.Atom{atom("R", v("x"), v("y"))},
	}
	b := &constraint.IC{
		Name: "b",
		Body: []term.Atom{atom("T", v("x"))},
		Head: []term.Atom{atom("P", v("x"), v("y"), v("z"))},
	}
	return d, constraint.MustSet([]*constraint.IC{a, b}, nil)
}

func TestExample11(t *testing.T) {
	d, cs := example11()
	if !Satisfies(d, cs, NullAware) {
		t.Errorf("Example 11 must be consistent:\n%s", Check(d, cs, NullAware))
	}
	// "If we add tuple P(f,d,null) to D, it becomes inconsistent wrt (a)."
	d.Insert(fact("P", s("f"), s("d"), n()))
	r := Check(d, cs, NullAware)
	if r.Consistent() {
		t.Fatal("Example 11 + P(f,d,null) must be inconsistent")
	}
	if len(r.IC) != 1 || r.IC[0].IC.Name != "a" {
		t.Errorf("violations = %v", r.IC)
	}
}

// --- Example 12 ------------------------------------------------------------

func TestExample12JoinThroughNull(t *testing.T) {
	d := relational.NewInstance(
		fact("P1", s("a"), s("b"), s("c")),
		fact("P1", s("d"), n(), s("c")),
		fact("P1", s("b"), s("e"), n()),
		fact("P1", n(), s("b"), s("b")),
		fact("P2", s("b"), s("a")),
		fact("P2", s("e"), s("c")),
		fact("P2", s("d"), n()),
		fact("P2", n(), s("b")),
		fact("Q", s("a"), s("a"), s("c")),
		fact("Q", s("b"), n(), s("c")),
		fact("Q", s("b"), s("c"), s("d")),
		fact("Q", n(), s("c"), s("a")),
	)
	ic := &constraint.IC{
		Name: "ex12",
		Body: []term.Atom{atom("P1", v("x"), v("y"), v("w")), atom("P2", v("y"), v("z"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"), v("u"))},
	}
	if !SatisfiesIC(d, ic, NullAware) {
		t.Errorf("Example 12 must be consistent: %v", CheckIC(d, ic, NullAware))
	}
	// The join P1(d,null,c) ⋈ P2(null,b) exists under the
	// ordinary-constant treatment; dropping the IsNull exemption
	// (ClassicFO) exposes violations.
	if SatisfiesIC(d, ic, ClassicFO) {
		t.Error("Example 12 should be inconsistent classically")
	}
}

// --- Example 13 ------------------------------------------------------------

func TestExample13RepeatedExistential(t *testing.T) {
	d := relational.NewInstance(
		fact("P", s("a"), s("b")),
		fact("P", n(), s("c")),
		fact("Q", s("a"), n(), n()),
	)
	ic := &constraint.IC{
		Name: "ex13",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("Q", v("x"), v("z"), v("z"))},
	}
	if !SatisfiesIC(d, ic, NullAware) {
		t.Error("Example 13 must be consistent: null witnesses satisfy ∃z Q(x,z,z)")
	}
	// Under SQL-style matching (null never equals null) the witness
	// fails, so simple-match rejects.
	if SatisfiesIC(d, ic, SimpleMatch) {
		t.Error("Example 13 should be inconsistent under simple-match")
	}
	// A witness with distinct non-null values in the repeated positions
	// does not satisfy the constraint.
	d2 := relational.NewInstance(
		fact("P", s("a"), s("b")),
		fact("Q", s("a"), s("u"), s("w")),
	)
	if SatisfiesIC(d2, ic, NullAware) {
		t.Error("witness with unequal repeated positions must not satisfy")
	}
	d2.Insert(fact("Q", s("a"), s("u"), s("u")))
	if !SatisfiesIC(d2, ic, NullAware) {
		t.Error("witness with equal repeated positions must satisfy")
	}
}

// --- NNCs ------------------------------------------------------------------

func TestNNC(t *testing.T) {
	d := relational.NewInstance(
		fact("R", s("a"), n()),
		fact("R", n(), s("b")),
	)
	nnc := &constraint.NNC{Name: "nn", Pred: "R", Arity: 2, Pos: 0}
	got := CheckNNC(d, nnc)
	if len(got) != 1 || !got[0].Equal(fact("R", n(), s("b"))) {
		t.Errorf("CheckNNC = %v", got)
	}
	cs := set(t, nil, []*constraint.NNC{nnc})
	if Satisfies(d, cs, NullAware) {
		t.Error("NNC violation not detected by Satisfies")
	}
	r := Check(d, cs, NullAware)
	if r.Consistent() || len(r.NNC) != 1 {
		t.Errorf("Check = %v", r)
	}
}

// --- Violations and reports --------------------------------------------------

func TestViolationDetails(t *testing.T) {
	d := relational.NewInstance(fact("P", s("a"), s("b")))
	ic := &constraint.IC{
		Name: "t",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("R", v("x"))},
	}
	vs := CheckIC(d, ic, NullAware)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if !vs[0].Subst["x"].Eq(s("a")) || !vs[0].Subst["y"].Eq(s("b")) {
		t.Errorf("Subst = %v", vs[0].Subst)
	}
	if len(vs[0].Support) != 1 || !vs[0].Support[0].Equal(fact("P", s("a"), s("b"))) {
		t.Errorf("Support = %v", vs[0].Support)
	}
	if vs[0].String() == "" {
		t.Error("empty violation String")
	}
}

func TestDenialConstraint(t *testing.T) {
	d := relational.NewInstance(fact("P", s("a")), fact("Q", s("a")))
	den := constraint.Denial("d", atom("P", v("x")), atom("Q", v("x")))
	if SatisfiesIC(d, den, NullAware) {
		t.Error("denial violation not detected")
	}
	d2 := relational.NewInstance(fact("P", s("a")), fact("Q", s("b")))
	if !SatisfiesIC(d2, den, NullAware) {
		t.Error("denial false positive")
	}
	// Null in a relevant (join) attribute exempts.
	d3 := relational.NewInstance(fact("P", n()), fact("Q", n()))
	if !SatisfiesIC(d3, den, NullAware) {
		t.Error("null join must not violate a denial under |=_N")
	}
	if SatisfiesIC(d3, den, ClassicFO) {
		t.Error("null join must violate a denial classically")
	}
}

func TestConstantsAreRelevant(t *testing.T) {
	// P(x, a) → R(x): the constant position is relevant; a null there
	// never matches the constant, so only exact 'a' rows are checked.
	ic := &constraint.IC{
		Name: "c",
		Body: []term.Atom{atom("P", v("x"), term.CStr("a"))},
		Head: []term.Atom{atom("R", v("x"))},
	}
	d := relational.NewInstance(fact("P", s("q"), s("a")))
	if SatisfiesIC(d, ic, NullAware) {
		t.Error("missing R(q) must violate")
	}
	d2 := relational.NewInstance(fact("P", s("q"), s("b")), fact("P", s("w"), n()))
	if !SatisfiesIC(d2, ic, NullAware) {
		t.Error("non-matching constant rows must not violate")
	}
}

func TestFullMatchForcedViolation(t *testing.T) {
	// Full match: a key that is partially null violates regardless of
	// witnesses; a fully null key is exempt.
	ic := &constraint.IC{
		Name: "fk",
		Body: []term.Atom{atom("S", v("a"), v("b"))},
		Head: []term.Atom{atom("R", v("a"), v("b"), v("z"))},
	}
	partial := relational.NewInstance(fact("S", s("x"), n()), fact("R", s("x"), s("y"), i(1)))
	if SatisfiesIC(partial, ic, FullMatch) {
		t.Error("partially null key must violate full-match")
	}
	allNull := relational.NewInstance(fact("S", n(), n()))
	if !SatisfiesIC(allNull, ic, FullMatch) {
		t.Error("fully null key must be exempt under full-match")
	}
	if !SatisfiesIC(allNull, ic, PartialMatch) {
		t.Error("fully null key must be exempt under partial-match")
	}
}

func TestPartialMatchWitnessRules(t *testing.T) {
	ic := &constraint.IC{
		Name: "fk",
		Body: []term.Atom{atom("S", v("a"), v("b"))},
		Head: []term.Atom{atom("R", v("a"), v("b"))},
	}
	// Key (x, null): partial match needs R(x, w) with w non-null.
	d := relational.NewInstance(fact("S", s("x"), n()), fact("R", s("x"), n()))
	if SatisfiesIC(d, ic, PartialMatch) {
		t.Error("witness with null in open position must not satisfy partial-match")
	}
	d2 := relational.NewInstance(fact("S", s("x"), n()), fact("R", s("x"), s("w")))
	if !SatisfiesIC(d2, ic, PartialMatch) {
		t.Error("witness with non-null open position must satisfy partial-match")
	}
}

// --- No-null databases coincide with classical FO ---------------------------

func TestNoNullCoincidesWithClassical(t *testing.T) {
	// "In a database without null values, Definition 4 coincides with the
	// traditional first-order definition of IC satisfaction."
	rng := rand.New(rand.NewSource(7))
	pool := constraintPool()
	for trial := 0; trial < 300; trial++ {
		d := randomInstance(rng, false)
		ic := pool[rng.Intn(len(pool))]
		if got, want := SatisfiesIC(d, ic, NullAware), SatisfiesIC(d, ic, ClassicFO); got != want {
			t.Fatalf("trial %d: %s on %v: null-aware=%v classic=%v", trial, ic, d, got, want)
		}
	}
}

// --- Direct evaluator vs projection oracle ----------------------------------

func constraintPool() []*constraint.IC {
	return []*constraint.IC{
		{ // UIC with transfer
			Name: "p1",
			Body: []term.Atom{atom("P", v("x"), v("y"))},
			Head: []term.Atom{atom("R", v("x"))},
		},
		{ // RIC
			Name: "p2",
			Body: []term.Atom{atom("P", v("x"), v("y"))},
			Head: []term.Atom{atom("R", v("y"), v("z"))},
		},
		{ // denial with join
			Name: "p3",
			Body: []term.Atom{atom("P", v("x"), v("y")), atom("R", v("y"))},
		},
		{ // check
			Name: "p4",
			Body: []term.Atom{atom("P", v("x"), v("y"))},
			Phi:  []term.Builtin{{Op: term.NEQ, L: v("x"), R: v("y")}},
		},
		{ // repeated existential
			Name: "p5",
			Body: []term.Atom{atom("R", v("x"))},
			Head: []term.Atom{atom("Q", v("x"), v("z"), v("z"))},
		},
		{ // two head atoms
			Name: "p6",
			Body: []term.Atom{atom("P", v("x"), v("y"))},
			Head: []term.Atom{atom("R", v("x")), atom("Q", v("x"), v("y"), v("u"))},
		},
		{ // constant in body and head
			Name: "p7",
			Body: []term.Atom{atom("P", v("x"), term.CStr("a"))},
			Head: []term.Atom{atom("Q", v("x"), term.CStr("b"), v("z"))},
		},
		{ // self join
			Name: "p8",
			Body: []term.Atom{atom("P", v("x"), v("y")), atom("P", v("y"), v("z"))},
			Head: []term.Atom{atom("P", v("x"), v("z"))},
		},
	}
}

func randomInstance(rng *rand.Rand, withNulls bool) *relational.Instance {
	consts := []value.V{s("a"), s("b"), s("c")}
	if withNulls {
		consts = append(consts, n(), n()) // boost null frequency
	}
	pick := func() value.V { return consts[rng.Intn(len(consts))] }
	d := relational.NewInstance()
	for k := 0; k < rng.Intn(5); k++ {
		d.Insert(fact("P", pick(), pick()))
	}
	for k := 0; k < rng.Intn(4); k++ {
		d.Insert(fact("R", pick()))
	}
	for k := 0; k < rng.Intn(4); k++ {
		d.Insert(fact("Q", pick(), pick(), pick()))
	}
	return d
}

func TestDirectEvaluatorMatchesProjectionOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := constraintPool()
	for trial := 0; trial < 2000; trial++ {
		d := randomInstance(rng, true)
		ic := pool[rng.Intn(len(pool))]
		direct := SatisfiesIC(d, ic, NullAware)
		oracle := SatisfiesICOracle(d, ic)
		if direct != oracle {
			t.Fatalf("trial %d: %s on %v: direct=%v oracle=%v (A=%v)",
				trial, ic, d, direct, oracle, ic.RelevantAttrs())
		}
	}
}

func TestSatisfiesAgreesWithCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := constraintPool()
	for trial := 0; trial < 500; trial++ {
		d := randomInstance(rng, true)
		ic := pool[rng.Intn(len(pool))]
		cs := constraint.MustSet([]*constraint.IC{ic}, nil)
		if Satisfies(d, cs, NullAware) != (len(CheckIC(d, ic, NullAware)) == 0) {
			t.Fatalf("trial %d: Satisfies disagrees with Check for %s on %v", trial, ic, d)
		}
	}
}

func TestProjectConstraintShape(t *testing.T) {
	// Example 10 ψ: P(x,y,z) → R(x,y) projects to P(x,y) → R(x,y).
	ic := &constraint.IC{
		Name: "ex10",
		Body: []term.Atom{atom("P", v("x"), v("y"), v("z"))},
		Head: []term.Atom{atom("R", v("x"), v("y"))},
	}
	pc := ProjectConstraint(ic)
	if got := pc.Body[0].String(); got != "P#3(x,y)" {
		t.Errorf("projected body = %q", got)
	}
	if got := pc.Head[0].String(); got != "R#2(x,y)" {
		t.Errorf("projected head = %q", got)
	}
	pSig := constraint.PredSig{Name: "P", Arity: 3}
	rSig := constraint.PredSig{Name: "R", Arity: 2}
	if len(pc.Positions[pSig]) != 2 || len(pc.Positions[rSig]) != 2 {
		t.Errorf("positions = %v", pc.Positions)
	}
}

func TestSemanticsString(t *testing.T) {
	if len(AllSemantics()) != 6 {
		t.Fatal("AllSemantics size")
	}
	seen := map[string]bool{}
	for _, sem := range AllSemantics() {
		str := sem.String()
		if str == "" || seen[str] {
			t.Errorf("bad semantics name %q", str)
		}
		seen[str] = true
	}
}

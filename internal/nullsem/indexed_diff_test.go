package nullsem

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/term"
	"repro/internal/value"
)

// This file cross-validates the index-backed evaluator against a naive
// reference that joins by scanning the materialized fact list with no
// bound-column probes — the pre-engine evaluation strategy. Any disagreement
// is a bug in the binding derivation (atomBindings / witnessBindings) or in
// the storage engine's Scan. The instance generator mirrors the randomized
// differential harness in internal/core/fuzz_test.go.

// naiveJoinBody enumerates body substitutions by filtering the full fact
// list per atom, exactly like the seed's Relation()-scan join.
func naiveJoinBody(d *relational.Instance, body []term.Atom, yield func(term.Subst, []relational.Fact) bool) {
	subst := term.Subst{}
	support := make([]relational.Fact, 0, len(body))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(body) {
			return yield(subst, support)
		}
		a := body[i]
		for _, f := range d.Facts() {
			if f.Pred != a.Pred || len(f.Args) != a.Arity() {
				continue
			}
			bound, ok := matchAtom(f.Args, a, subst)
			if !ok {
				continue
			}
			support = append(support, f)
			cont := rec(i + 1)
			support = support[:len(support)-1]
			undo(subst, bound)
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
}

// naiveConsequentHolds checks the consequent by scanning every fact of each
// head predicate through witnessMatches, with no index pruning.
func naiveConsequentHolds(c *icContext, sem Semantics, d *relational.Instance, subst term.Subst) bool {
	for _, a := range c.ic.Head {
		for _, f := range d.Facts() {
			if f.Pred != a.Pred || len(f.Args) != a.Arity() {
				continue
			}
			if c.witnessMatches(sem, a, f.Args, subst) {
				return true
			}
		}
	}
	return false
}

// naiveCheckIC is CheckIC over the naive join and witness scan.
func naiveCheckIC(d *relational.Instance, ic *constraint.IC, sem Semantics) []Violation {
	var out []Violation
	c := newICContext(ic)
	naiveJoinBody(d, ic.Body, func(subst term.Subst, support []relational.Fact) bool {
		ex, forced := c.exempt(sem, subst, support)
		if ex {
			return true
		}
		if !forced {
			if phiHolds(sem, c.ic.Phi, subst) {
				return true
			}
			if naiveConsequentHolds(c, sem, d, subst) {
				return true
			}
		}
		out = append(out, Violation{IC: c.ic, Subst: subst.Clone(), Support: append([]relational.Fact(nil), support...)})
		return true
	})
	return out
}

func violationKeys(vs []Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[fmt.Sprintf("%v|%v", v.Subst, relational.SortFacts(append([]relational.Fact(nil), v.Support...)))]++
	}
	return m
}

func TestIndexedCheckMatchesNaiveScan(t *testing.T) {
	sets := []*constraint.Set{
		parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`),
		parser.MustConstraints(`
			r(X, Y), r(X, Z) -> Y = Z.
			s(U, V) -> r(V, W).
		`),
		parser.MustConstraints(`p(X, Y), q(Y, Z) -> r(X, Z) | X = Z.`),
		parser.MustConstraints(`r(X, Y), isnull(X) -> false.`),
	}
	rng := rand.New(rand.NewSource(2027))
	vals := []value.V{value.Str("a"), value.Str("b"), value.Null(), value.Int(21)}
	pick := func() value.V { return vals[rng.Intn(len(vals))] }
	preds := []struct {
		name  string
		arity int
	}{{"course", 2}, {"student", 2}, {"r", 2}, {"s", 2}, {"p", 2}, {"q", 2}}

	for trial := 0; trial < 150; trial++ {
		d := relational.NewInstance()
		for k := 0; k < 1+rng.Intn(10); k++ {
			p := preds[rng.Intn(len(preds))]
			args := make(relational.Tuple, p.arity)
			for i := range args {
				args[i] = pick()
			}
			d.Insert(relational.Fact{Pred: p.name, Args: args})
		}
		if rng.Intn(2) == 0 { // exercise overlay instances too
			d = d.Clone()
			for k := 0; k < rng.Intn(4); k++ {
				p := preds[rng.Intn(len(preds))]
				args := make(relational.Tuple, p.arity)
				for i := range args {
					args[i] = pick()
				}
				if rng.Intn(2) == 0 {
					d.Insert(relational.Fact{Pred: p.name, Args: args})
				} else {
					d.Delete(relational.Fact{Pred: p.name, Args: args})
				}
			}
		}
		for si, set := range sets {
			for _, ic := range set.ICs {
				for _, sem := range AllSemantics() {
					indexed := CheckIC(d, ic, sem)
					naive := naiveCheckIC(d, ic, sem)
					gi, gn := violationKeys(indexed), violationKeys(naive)
					if len(gi) != len(gn) {
						t.Fatalf("trial %d set %d sem %v: indexed %d violations, naive %d\nD = %v",
							trial, si, sem, len(gi), len(gn), d)
					}
					for k := range gn {
						if gi[k] != gn[k] {
							t.Fatalf("trial %d set %d sem %v: violation sets differ on %s\nD = %v",
								trial, si, sem, k, d)
						}
					}
					if sat := SatisfiesIC(d, ic, sem); sat != (len(naive) == 0) {
						t.Fatalf("trial %d set %d sem %v: SatisfiesIC = %v but naive finds %d violations",
							trial, si, sem, sat, len(naive))
					}
					if v, ok := FirstViolationIC(d, ic, sem); ok != (len(naive) > 0) {
						t.Fatalf("trial %d set %d sem %v: FirstViolationIC ok=%v, naive=%d", trial, si, sem, ok, len(naive))
					} else if ok {
						if _, known := gn[fmt.Sprintf("%v|%v", v.Subst, relational.SortFacts(append([]relational.Fact(nil), v.Support...)))]; !known {
							t.Fatalf("trial %d: FirstViolationIC returned a violation the naive check does not know: %v", trial, v)
						}
					}
				}
			}
			for _, n := range set.NNCs {
				indexed := CheckNNC(d, n)
				naive := 0
				for _, f := range d.Facts() {
					if f.Pred == n.Pred && len(f.Args) == n.Arity && f.Args[n.Pos].IsNull() {
						naive++
					}
				}
				if len(indexed) != naive {
					t.Fatalf("trial %d: CheckNNC = %d facts, naive = %d", trial, len(indexed), naive)
				}
			}
		}
	}
}

package nullsem

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/relational"
	"repro/internal/term"
)

func TestEmptyDatabaseSatisfiesEverything(t *testing.T) {
	// Section 2: "sets of constraints of this form are always consistent
	// in the classical sense, because the empty database always
	// satisfies them."
	d := relational.NewInstance()
	pool := constraintPool()
	for _, ic := range pool {
		for _, sem := range AllSemantics() {
			if !SatisfiesIC(d, ic, sem) {
				t.Errorf("empty database violates %s under %v", ic, sem)
			}
		}
	}
}

func TestZeroAryPredicates(t *testing.T) {
	// flag() → P(x) is expressible: a 0-ary antecedent fires iff the
	// fact is present.
	ic := &constraint.IC{
		Name: "z",
		Body: []term.Atom{atom("flag")},
		Head: []term.Atom{atom("P", v("x"))},
	}
	empty := relational.NewInstance()
	if !SatisfiesIC(empty, ic, NullAware) {
		t.Error("no flag, no obligation")
	}
	withFlag := relational.NewInstance(fact("flag"))
	if SatisfiesIC(withFlag, ic, NullAware) {
		t.Error("flag set but no P tuple: must violate")
	}
	withFlag.Insert(fact("P", s("a")))
	if !SatisfiesIC(withFlag, ic, NullAware) {
		t.Error("flag and P(a): must satisfy")
	}
	// The projection oracle agrees on 0-ary edge cases.
	if SatisfiesICOracle(relational.NewInstance(fact("flag")), ic) {
		t.Error("oracle disagrees on the violating instance")
	}
}

func TestNoRelevantAttributesConstraint(t *testing.T) {
	// P(x,y) → ∃z Q(z): A(ψ) = ∅; satisfaction degenerates to
	// "P empty or Q non-empty".
	ic := &constraint.IC{
		Name: "empties",
		Body: []term.Atom{atom("P", v("x"), v("y"))},
		Head: []term.Atom{atom("Q", v("z"))},
	}
	if got := ic.RelevantAttrs().String(); got != "{}" {
		t.Fatalf("A(ψ) = %s, want empty", got)
	}
	d := relational.NewInstance(fact("P", s("a"), s("b")))
	if SatisfiesIC(d, ic, NullAware) {
		t.Error("P non-empty, Q empty: must violate")
	}
	d.Insert(fact("Q", s("anything")))
	if !SatisfiesIC(d, ic, NullAware) {
		t.Error("any Q tuple satisfies")
	}
	// Even a null-only Q tuple works (no relevant positions remain).
	d2 := relational.NewInstance(fact("P", s("a"), s("b")), fact("Q", n()))
	if !SatisfiesIC(d2, ic, NullAware) {
		t.Error("Q(null) must satisfy a projection-to-zero constraint")
	}
	if !SatisfiesICOracle(d2, ic) {
		t.Error("oracle disagrees")
	}
}

func TestInsertionAllowedExistingFact(t *testing.T) {
	d := relational.NewInstance(fact("P", s("a")))
	ic := &constraint.IC{
		Name: "r",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("R", v("x"))},
	}
	set := constraint.MustSet([]*constraint.IC{ic}, nil)
	// The database is already inconsistent; re-inserting an existing
	// fact reports the current state.
	if InsertionAllowed(d, set, fact("P", s("a")), NullAware) {
		t.Error("re-inserting into an inconsistent database must report false")
	}
	d.Insert(fact("R", s("a")))
	if !InsertionAllowed(d, set, fact("P", s("a")), NullAware) {
		t.Error("re-inserting into a consistent database must report true")
	}
	// InsertionAllowed must not mutate the database.
	if d.Has(fact("P", s("b"))) {
		t.Fatal("test setup broken")
	}
	InsertionAllowed(d, set, fact("P", s("b")), NullAware)
	if d.Has(fact("P", s("b"))) {
		t.Error("InsertionAllowed mutated the instance")
	}
}

func TestConstantsInRICHead(t *testing.T) {
	// P(x) → ∃z Q(x, "active", z): the constant position is relevant
	// and must match exactly.
	ic := &constraint.IC{
		Name: "c",
		Body: []term.Atom{atom("P", v("x"))},
		Head: []term.Atom{atom("Q", v("x"), term.CStr("active"), v("z"))},
	}
	d := relational.NewInstance(fact("P", s("a")), fact("Q", s("a"), s("inactive"), s("w")))
	if SatisfiesIC(d, ic, NullAware) {
		t.Error("witness with wrong constant must not satisfy")
	}
	d.Insert(fact("Q", s("a"), s("active"), n()))
	if !SatisfiesIC(d, ic, NullAware) {
		t.Error("witness with matching constant and null existential must satisfy")
	}
	if !SatisfiesICOracle(d, ic) {
		t.Error("oracle disagrees")
	}
}

func TestSelfJoinViolationSupports(t *testing.T) {
	// The same fact may support a violation twice through a self join;
	// the Support list must carry both occurrences.
	den := constraint.Denial("d", atom("P", v("x"), v("y")), atom("P", v("y"), v("x")))
	d := relational.NewInstance(fact("P", s("a"), s("a")))
	vs := CheckIC(d, den, NullAware)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if len(vs[0].Support) != 2 {
		t.Errorf("support = %v, want the fact twice", vs[0].Support)
	}
}

package nullsem

import (
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/parser"
	"repro/internal/relational"
	"repro/internal/value"
)

// This file pins the Δ-seeded incremental checkers against the scratch
// evaluators: over random instances, random deltas, and every semantics, the
// incremental verdicts and violation sets must be exactly the scratch ones.
// The suite runs under -race in CI together with the rest of the package.

func incrementalSets() []*constraint.Set {
	return []*constraint.Set{
		parser.MustConstraints(`course(Id, Code) -> student(Id, Name).`),
		parser.MustConstraints(`
			r(X, Y), r(X, Z) -> Y = Z.
			s(U, V) -> r(V, W).
		`),
		parser.MustConstraints(`p(X, Y), q(Y, Z) -> r(X, Z) | X = Z.`),
		parser.MustConstraints(`r(X, Y), isnull(X) -> false.`),
		parser.MustConstraints(`p(X, Y) -> p(Y, Z).`),
		parser.MustConstraints(`
			r(X, Y) -> s(X, Y).
			s(X, Y), isnull(Y) -> false.
		`),
	}
}

func randomTupleFact(rng *rand.Rand) relational.Fact {
	vals := []value.V{value.Str("a"), value.Str("b"), value.Str("c"), value.Null(), value.Int(21)}
	preds := []struct {
		name  string
		arity int
	}{{"course", 2}, {"student", 2}, {"r", 2}, {"s", 2}, {"p", 2}, {"q", 2}}
	p := preds[rng.Intn(len(preds))]
	args := make(relational.Tuple, p.arity)
	for i := range args {
		args[i] = vals[rng.Intn(len(vals))]
	}
	return relational.Fact{Pred: p.name, Args: args}
}

func randomParent(rng *rand.Rand) *relational.Instance {
	d := relational.NewInstance()
	for k := 0; k < 1+rng.Intn(10); k++ {
		d.Insert(randomTupleFact(rng))
	}
	return d
}

// perturb clones the parent and applies 1–3 random single-fact edits,
// returning the child together with Δ(parent, child).
func perturb(rng *rand.Rand, parent *relational.Instance) (*relational.Instance, relational.Delta) {
	child := parent.Clone()
	for k := 0; k < 1+rng.Intn(3); k++ {
		f := randomTupleFact(rng)
		if rng.Intn(2) == 0 {
			child.Insert(f)
		} else if facts := child.Facts(); len(facts) > 0 && rng.Intn(2) == 0 {
			child.Delete(facts[rng.Intn(len(facts))])
		} else {
			child.Delete(f)
		}
	}
	return child, relational.Diff(parent, child)
}

func violationSet(c *icContext, vs []Violation) map[string]bool {
	m := map[string]bool{}
	for _, v := range vs {
		m[c.substKey(v.Subst)] = true
	}
	return m
}

// TestIncrementalMatchesScratch is the tentpole differential: FirstFrom /
// ViolationsFrom under the satisfied-parent contract, Update on arbitrary
// parents, and SatisfiesFrom on consistent anchors must all agree with the
// scratch evaluators on the child instance.
func TestIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	sets := incrementalSets()
	for trial := 0; trial < 250; trial++ {
		parent := randomParent(rng)
		child, delta := perturb(rng, parent)
		set := sets[trial%len(sets)]
		for _, sem := range AllSemantics() {
			for _, ic := range set.ICs {
				k := NewICChecker(ic, sem)
				scratch := CheckIC(child, ic, sem)
				want := violationSet(k.c, scratch)

				// Update: prev is the complete parent list, no contract on
				// parent consistency.
				prev := CheckIC(parent, ic, sem)
				got := k.Update(child, prev, delta)
				gotSet := violationSet(k.c, got)
				if len(got) != len(scratch) || len(gotSet) != len(want) {
					t.Fatalf("trial %d sem %v ic %s: Update gives %d violations, scratch %d\nparent=%v\nchild=%v\nΔ=%v",
						trial, sem, ic.Name, len(got), len(scratch), parent, child, delta)
				}
				for key := range want {
					if !gotSet[key] {
						t.Fatalf("trial %d sem %v ic %s: Update misses a scratch violation\nparent=%v\nchild=%v\nΔ=%v",
							trial, sem, ic.Name, parent, child, delta)
					}
				}

				// FirstFrom / ViolationsFrom require a satisfied parent.
				if len(prev) != 0 {
					continue
				}
				if v, found := FirstViolationICFrom(child, ic, sem, delta); found != (len(scratch) > 0) {
					t.Fatalf("trial %d sem %v ic %s: FirstViolationICFrom found=%v, scratch has %d\nparent=%v\nchild=%v\nΔ=%v",
						trial, sem, ic.Name, found, len(scratch), parent, child, delta)
				} else if found && !want[k.c.substKey(v.Subst)] {
					t.Fatalf("trial %d sem %v ic %s: FirstViolationICFrom returned unknown violation %v",
						trial, sem, ic.Name, v)
				}
				fromSet := violationSet(k.c, k.ViolationsFrom(child, delta))
				if len(fromSet) != len(want) {
					t.Fatalf("trial %d sem %v ic %s: ViolationsFrom %d violations, scratch %d\nparent=%v\nchild=%v\nΔ=%v",
						trial, sem, ic.Name, len(fromSet), len(want), parent, child, delta)
				}
				for key := range want {
					if !fromSet[key] {
						t.Fatalf("trial %d sem %v ic %s: ViolationsFrom misses a scratch violation", trial, sem, ic.Name)
					}
				}
			}

			// Whole-set Δ-anchored satisfaction on consistent anchors.
			if Satisfies(parent, set, sem) {
				if got, want := SatisfiesFrom(child, set, sem, delta), Satisfies(child, set, sem); got != want {
					t.Fatalf("trial %d sem %v: SatisfiesFrom = %v, Satisfies = %v\nparent=%v\nchild=%v\nΔ=%v",
						trial, sem, got, want, parent, child, delta)
				}
			}
		}
	}
}

// TestUpdateChainsAcrossFixSequences walks random multi-step fix sequences
// (one single-fact edit per step, the shape of the repair search) and keeps
// the maintained list in lockstep with the scratch check at every node.
func TestUpdateChainsAcrossFixSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	sets := incrementalSets()
	for trial := 0; trial < 120; trial++ {
		cur := randomParent(rng)
		set := sets[trial%len(sets)]
		sem := AllSemantics()[trial%len(AllSemantics())]
		checkers := make([]*ICChecker, len(set.ICs))
		lists := make([][]Violation, len(set.ICs))
		for i, ic := range set.ICs {
			checkers[i] = NewICChecker(ic, sem)
			lists[i] = checkers[i].Violations(cur)
		}
		for step := 0; step < 6; step++ {
			next := cur.Clone()
			var delta relational.Delta
			f := randomTupleFact(rng)
			if facts := cur.Facts(); len(facts) > 0 && rng.Intn(2) == 0 {
				g := facts[rng.Intn(len(facts))]
				next.Delete(g)
				delta.Removed = []relational.Fact{g}
			} else {
				if !next.Insert(f) {
					continue // duplicate insert: no delta, nothing to check
				}
				delta.Added = []relational.Fact{f}
			}
			for i, ic := range set.ICs {
				lists[i] = checkers[i].Update(next, lists[i], delta)
				scratch := CheckIC(next, ic, sem)
				got := violationSet(checkers[i].c, lists[i])
				want := violationSet(checkers[i].c, scratch)
				if len(got) != len(want) {
					t.Fatalf("trial %d step %d sem %v ic %s: maintained %d violations, scratch %d\ncur=%v\nnext=%v",
						trial, step, sem, ic.Name, len(got), len(want), cur, next)
				}
				for key := range want {
					if !got[key] {
						t.Fatalf("trial %d step %d sem %v ic %s: maintained list misses scratch violation", trial, step, sem, ic.Name)
					}
				}
			}
			cur = next
		}
	}
}

// TestSatisfiesFromDeniesWithGenuineViolations pins the one-sided guarantee
// SatisfiesFrom documents: even when the anchor contract is broken (the
// parent is inconsistent), a false verdict is always backed by a genuine
// violation — it never invents one.
func TestSatisfiesFromDeniesWithGenuineViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sets := incrementalSets()
	for trial := 0; trial < 150; trial++ {
		parent := randomParent(rng)
		child, delta := perturb(rng, parent)
		set := sets[trial%len(sets)]
		for _, sem := range AllSemantics() {
			if !SatisfiesFrom(child, set, sem, delta) && Satisfies(child, set, sem) {
				t.Fatalf("trial %d sem %v: SatisfiesFrom invented a violation on a consistent instance\nchild=%v\nΔ=%v",
					trial, sem, child, delta)
			}
		}
	}
}

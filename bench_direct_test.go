package nullcqa_test

// Benchmarks for the direct (repair-less) engine: classification vs repair
// enumeration, incremental session maintenance, and sustained concurrent
// update throughput. EXPERIMENTS.md records the measured numbers.

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fdgen"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/session"
)

// directBenchQuery projects the dependent values of one conflicted key
// group: its certain answers are empty and its possible answers are the
// group's classes, so every engine must actually reason about the conflict
// rather than ride a short-circuit.
func directBenchQuery() *query.Q {
	return parser.MustQuery(`q(V) :- r0("k0_0", V, Id).`)
}

// BenchmarkDirectVsRepair compares consistent query answering on FD-only
// workloads across the three engines. The repair engines pay for the
// enumeration of 2^violations · ... repairs (Classes=2 ⇒ 2^v), the direct
// engine for one classification pass plus a per-candidate certainty check,
// so the gap widens exponentially in the violation count. The scaling
// points (10⁴–10⁶ rows, violations in the thousands) have repair sets of
// size 2^2500 and beyond — no repair engine terminates on them at any
// -benchtime, so only the direct engine runs there; on the 10⁶-row point it
// still answers in well under 100ms.
func BenchmarkDirectVsRepair(b *testing.B) {
	q := directBenchQuery()

	for _, v := range []int{2, 6, 10} {
		cfg := fdgen.Config{Rows: 1000, Violations: v, Seed: 7}
		d, set := fdgen.Generate(cfg)
		for _, eng := range []struct {
			name   string
			engine session.Engine
		}{
			{"search", core.EngineSearch},
			{"program", core.EngineProgram},
			{"direct", core.EngineDirect},
		} {
			b.Run(fmt.Sprintf("rows=1000/violations=%d/%s", v, eng.name), func(b *testing.B) {
				opts := core.NewOptions()
				opts.Engine = eng.engine
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ans, err := core.ConsistentAnswers(d, set, q, opts)
					if err != nil || len(ans.Tuples) != 0 {
						b.Fatalf("certain=%d err=%v", len(ans.Tuples), err)
					}
				}
			})
		}
	}

	// Repair-infeasible scale: every fourth key group conflicted, so the
	// repair set has 2^(rows/8) elements. "cold" pays the one-shot cost
	// (classification scan of the whole instance plus the answer); "warm"
	// answers on a session whose classification is already maintained,
	// which is the deployed shape — cqad keeps sessions alive and Update
	// advances them in O(|Δ|).
	for _, rows := range []int{10_000, 100_000, 1_000_000} {
		cfg := fdgen.Config{Rows: rows, Violations: rows / 8, Seed: 7}
		d, set := fdgen.Generate(cfg)
		opts := core.NewOptions()
		opts.Engine = core.EngineDirect
		b.Run(fmt.Sprintf("rows=%d/violations=%d/direct-cold", rows, rows/8), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ans, err := core.ConsistentAnswers(d, set, q, opts)
				if err != nil || len(ans.Tuples) != 0 {
					b.Fatalf("certain=%d err=%v", len(ans.Tuples), err)
				}
			}
		})
		b.Run(fmt.Sprintf("rows=%d/violations=%d/direct-warm", rows, rows/8), func(b *testing.B) {
			s := session.New(d, set, opts)
			if _, err := s.Answer(q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ans, err := s.Answer(q)
				if err != nil || len(ans.Tuples) != 0 {
					b.Fatalf("certain=%d err=%v", len(ans.Tuples), err)
				}
			}
		})
	}
}

// BenchmarkDirectSessionUpdate is the incremental-maintenance acceptance
// benchmark: sustained small updates against a direct-engine session with a
// standing query. "session" applies each delta to a persistent session, so
// the classification advances in O(|Δ|); "scratch" is what callers without
// the session layer would do — rebuild the classification from the full
// instance on every step and answer from the rebuild.
func BenchmarkDirectSessionUpdate(b *testing.B) {
	cfg := fdgen.Config{Rows: 10_000, Violations: 50, Seed: 3}
	d, set := fdgen.Generate(cfg)
	deltas := fdgen.Updates(cfg, 64, 4)
	q := directBenchQuery()

	b.Run("session", func(b *testing.B) {
		opts := core.NewOptions()
		opts.Engine = core.EngineDirect
		s := session.New(d.Clone(), set, opts)
		if _, err := s.Answer(q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Apply(deltas[i%len(deltas)]); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Answer(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		cur := d.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dl := deltas[i%len(deltas)]
			for _, f := range dl.Removed {
				cur.Delete(f)
			}
			for _, f := range dl.Added {
				cur.Insert(f)
			}
			opts := core.NewOptions()
			opts.Engine = core.EngineDirect
			if _, err := core.ConsistentAnswers(cur, set, q, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSessionSustained drives a direct-engine session the way cqad
// does: several writer goroutines produce timestamped deltas into a queue,
// one consumer (sessions are single-writer by contract) applies them and
// answers the standing query. ns/op is the end-to-end apply+answer cost;
// the extra metrics report the staleness distribution — how long a delta
// waited from production to applied — and the sustained apply throughput.
func BenchmarkSessionSustained(b *testing.B) {
	cfg := fdgen.Config{Rows: 10_000, Violations: 50, Seed: 5}
	d, set := fdgen.Generate(cfg)
	q := directBenchQuery()

	const writers = 4
	type stamped struct {
		dl relational.Delta
		at time.Time
	}

	opts := core.NewOptions()
	opts.Engine = core.EngineDirect
	s := session.New(d.Clone(), set, opts)
	if _, err := s.Answer(q); err != nil {
		b.Fatal(err)
	}

	ch := make(chan stamped, 4*writers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcfg := cfg
			wcfg.Seed = cfg.Seed + int64(w)
			deltas := fdgen.Updates(wcfg, 64, 4)
			for i := 0; ; i++ {
				select {
				case ch <- stamped{deltas[i%len(deltas)], time.Now()}:
				case <-done:
					return
				}
			}
		}(w)
	}
	defer func() { close(done); wg.Wait() }()

	staleness := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		st := <-ch
		if _, err := s.Apply(st.dl); err != nil {
			b.Fatal(err)
		}
		staleness = append(staleness, time.Since(st.at))
		if _, err := s.Answer(q); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Slice(staleness, func(i, j int) bool { return staleness[i] < staleness[j] })
	b.ReportMetric(float64(staleness[len(staleness)/2]), "p50-staleness-ns")
	b.ReportMetric(float64(staleness[len(staleness)*99/100]), "p99-staleness-ns")
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "applies/sec")
}
